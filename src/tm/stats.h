// Per-core transaction statistics.
#ifndef TM2C_SRC_TM_STATS_H_
#define TM2C_SRC_TM_STATS_H_

#include <array>
#include <cstdint>

#include "src/sim/time.h"

namespace tm2c {

struct TxStats {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t raw_conflicts = 0;
  uint64_t waw_conflicts = 0;
  uint64_t war_conflicts = 0;
  uint64_t notify_aborts = 0;  // aborted by a remote CM revocation
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t messages_sent = 0;
  uint64_t early_releases = 0;
  uint64_t validation_failures = 0;  // elastic-read
  SimTime busy_time = 0;             // local time spent inside attempts
  uint64_t max_attempts_per_tx = 0;  // worst-case retries of a single tx
  // Lock-acquisition cost: stripes requested from a DTM node (granted or
  // refused), batch messages among those requests, and the local time spent
  // waiting for acquisition responses. acquire_time / lock_acquires is the
  // per-stripe mean acquire latency the batching ablation tracks.
  uint64_t lock_acquires = 0;
  uint64_t batch_messages = 0;
  SimTime acquire_time = 0;
  // Owner-local fast path split: stripes acquired by calling the caller's
  // own LockTable directly (zero messages) vs through the message protocol.
  // local_acquires + remote_acquires == lock_acquires always; with the fast
  // path off (the default) everything counts as remote.
  uint64_t local_acquires = 0;
  uint64_t remote_acquires = 0;
  // Durability: kCommitLog messages sent at commit time and the local time
  // spent waiting for their acks (zero with durability off).
  uint64_t commit_log_msgs = 0;
  SimTime commit_log_wait = 0;
  // Service-side pushback: attempts aborted because the stripe's range was
  // draining for migration (kMigrating) or the service shed load
  // (kOverload), and kOwnershipUpdate notifications this runtime consumed.
  uint64_t migrating_aborts = 0;
  uint64_t overload_aborts = 0;
  uint64_t ownership_updates = 0;
  // In-flight pipeline occupancy: bucket min(depth_at_issue, 8) - 1 counts
  // one kBatchAcquire issued while depth_at_issue requests (itself
  // included) were outstanding. Under the lockstep depth-1 path every batch
  // lands in bucket 0. Local fast-path span calls are never in flight and
  // do not count.
  std::array<uint64_t, 8> inflight_depth_hist{};

  double CommitRate() const {
    const uint64_t attempts = commits + aborts;
    return attempts == 0 ? 1.0 : static_cast<double>(commits) / static_cast<double>(attempts);
  }

  // Field-by-field equality, used by the determinism regression tests
  // (same seed and chaos configuration => identical statistics).
  bool operator==(const TxStats& other) const {
    return commits == other.commits && aborts == other.aborts &&
           raw_conflicts == other.raw_conflicts && waw_conflicts == other.waw_conflicts &&
           war_conflicts == other.war_conflicts && notify_aborts == other.notify_aborts &&
           reads == other.reads && writes == other.writes &&
           messages_sent == other.messages_sent && early_releases == other.early_releases &&
           validation_failures == other.validation_failures && busy_time == other.busy_time &&
           max_attempts_per_tx == other.max_attempts_per_tx &&
           lock_acquires == other.lock_acquires && batch_messages == other.batch_messages &&
           acquire_time == other.acquire_time && local_acquires == other.local_acquires &&
           remote_acquires == other.remote_acquires &&
           commit_log_msgs == other.commit_log_msgs &&
           commit_log_wait == other.commit_log_wait &&
           migrating_aborts == other.migrating_aborts &&
           overload_aborts == other.overload_aborts &&
           ownership_updates == other.ownership_updates &&
           inflight_depth_hist == other.inflight_depth_hist;
  }
  bool operator!=(const TxStats& other) const { return !(*this == other); }

  void Merge(const TxStats& other) {
    commits += other.commits;
    aborts += other.aborts;
    raw_conflicts += other.raw_conflicts;
    waw_conflicts += other.waw_conflicts;
    war_conflicts += other.war_conflicts;
    notify_aborts += other.notify_aborts;
    reads += other.reads;
    writes += other.writes;
    messages_sent += other.messages_sent;
    early_releases += other.early_releases;
    validation_failures += other.validation_failures;
    busy_time += other.busy_time;
    lock_acquires += other.lock_acquires;
    batch_messages += other.batch_messages;
    acquire_time += other.acquire_time;
    local_acquires += other.local_acquires;
    remote_acquires += other.remote_acquires;
    commit_log_msgs += other.commit_log_msgs;
    commit_log_wait += other.commit_log_wait;
    migrating_aborts += other.migrating_aborts;
    overload_aborts += other.overload_aborts;
    ownership_updates += other.ownership_updates;
    for (size_t i = 0; i < inflight_depth_hist.size(); ++i) {
      inflight_depth_hist[i] += other.inflight_depth_hist[i];
    }
    if (other.max_attempts_per_tx > max_attempts_per_tx) {
      max_attempts_per_tx = other.max_attempts_per_tx;
    }
  }
};

}  // namespace tm2c

#endif  // TM2C_SRC_TM_STATS_H_

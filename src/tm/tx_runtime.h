// Application-side transactional runtime (Section 3.3).
//
// One TxRuntime per application core. Transactions are written as lambdas
// over a Tx handle:
//
//   TxRuntime rt(env, config, address_map);
//   rt.Execute([&](Tx& tx) {
//     uint64_t v = tx.Read(account_a);
//     tx.Write(account_a, v - 10);
//     tx.Write(account_b, tx.Read(account_b) + 10);
//   });
//
// Reads are visible: the read lock is acquired from the responsible DTM
// node before the shared-memory read (Algorithm 4). Writes are deferred:
// buffered locally and persisted at commit after (lazily) acquiring the
// write locks (Algorithm 3); an eager write-lock mode exists as an
// ablation. Aborts restart the body; the body must therefore be free of
// side effects other than tx.Read/tx.Write (the paper's model).
//
// Elastic transactions (Section 6) are selected by TmConfig::tx_mode:
// kElasticEarly keeps only a sliding window of read locks, sending an early
// release for older ones; kElasticRead takes no read locks at all and
// value-validates the window instead.
//
// Control-flow contract: aborts and end-of-run teardown are delivered by
// exception (TxAbortException, Fiber::Unwound) THROUGH the transaction
// body. A body may catch its own exception types, but must never swallow
// these with a catch-all: the runtime detects both swallows and treats
// them as fatal programming errors (see tests/check_test.cc).
#ifndef TM2C_SRC_TM_TX_RUNTIME_H_
#define TM2C_SRC_TM_TX_RUNTIME_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/rng.h"
#include "src/runtime/core_env.h"
#include "src/tm/address_map.h"
#include "src/tm/config.h"
#include "src/tm/dtm_service.h"
#include "src/tm/stats.h"
#include "src/tm/trace.h"

namespace tm2c {

// Internal control-flow signal for aborts. Thrown only by the runtime and
// caught by Execute's retry loop; application code must not catch it.
struct TxAbortException {
  ConflictKind reason = ConflictKind::kNone;
};

class TxRuntime;

// Handle passed to transaction bodies.
class Tx {
 public:
  uint64_t Read(uint64_t addr);
  void Write(uint64_t addr, uint64_t value);

  // Visible-read batch: acquires the read locks for every address in
  // `addrs`, grouped by responsible node and flushed as kBatchAcquire
  // messages of at most TmConfig::max_batch entries, then performs the
  // shared-memory reads. With TmConfig::pipeline_depth > 1 the per-node
  // batches are issued before any reply is awaited, overlapping the round
  // trips. Semantically identical to calling Read() per address under
  // TxMode::kNormal; the elastic modes and max_batch == 1 fall back to
  // exactly that.
  std::vector<uint64_t> ReadMany(const std::vector<uint64_t>& addrs);

  // Asynchronous read-lock prefetch: issues the batch acquisitions for
  // `addrs` like ReadMany but returns without waiting for the replies (up
  // to pipeline_depth - 1 may stay outstanding) and without performing the
  // shared-memory reads, letting the body overlap acquisition with
  // compute. A later Read()/ReadMany() of a prefetched address waits for
  // its request to resolve; a refused prefetch aborts the transaction at
  // the next transactional operation. No-op under the elastic modes and
  // with max_batch == 1 (scalar semantics have nothing to overlap);
  // pipeline_depth == 1 degenerates to the synchronous ReadMany
  // acquisition without the reads.
  void Prefetch(const std::vector<uint64_t>& addrs);

 private:
  friend class TxRuntime;
  explicit Tx(TxRuntime* rt) : rt_(rt) {}
  TxRuntime* rt_;
};

class TxRuntime {
 public:
  // `local_service` must be non-null in the multitasked deployment: it is
  // used to serve incoming DTM requests while this core waits for its own
  // responses and to process self-addressed requests synchronously.
  TxRuntime(CoreEnv& env, const TmConfig& config, const AddressMap& map,
            DtmService* local_service = nullptr);

  // Runs `body` as one transaction, retrying on aborts until it commits.
  void Execute(const std::function<void(Tx&)>& body);

  // Like Execute but gives up after `max_attempts` attempts. Returns true
  // on commit. Used by the livelock/starvation property tests.
  bool TryExecute(const std::function<void(Tx&)>& body, uint64_t max_attempts);

  // Drains pending inbox messages: records abort notifications for the
  // running attempt and (in the multitasked deployment) serves incoming DTM
  // requests. Called automatically at every transaction start; long-running
  // non-transactional phases may call it explicitly to model a coroutine
  // yield point.
  void ServePending();

  // Asks the current owner of the exact registered owned range [base,
  // base + bytes) to migrate it to `target_partition`. Fire-and-forget and
  // idempotent: a stale request (the range already moved, or a drain is
  // already open) is ignored by the owner. Completion surfaces as a
  // kOwnershipUpdate broadcast (counted in TxStats::ownership_updates) and,
  // in between, as retryable kMigrating refusals. Must be called outside a
  // transaction.
  void RequestMigration(uint64_t base, uint64_t bytes, uint32_t target_partition);

  // Privatization barrier (Section 8): blocks until every application core
  // has reached its matching barrier call, implemented with the message
  // paths among the application cores — after it returns, all transactions
  // started before the barrier have completed on every core, so data can
  // safely be accessed non-transactionally. Must be called outside a
  // transaction, the same number of times on every application core.
  void PrivatizationBarrier();

  TxStats& stats() { return stats_; }
  const TmConfig& config() const { return config_; }
  CoreEnv& env() { return env_; }

  // Attaches the execution-trace recorder (verification harnesses only;
  // see src/tm/trace.h for the single-threaded-backend caveat).
  void set_trace(TxTraceSink* trace) { trace_ = trace; }

  // CM bookkeeping, exposed for tests.
  uint64_t commits_count() const { return commits_count_; }
  SimTime effective_tx_time() const { return effective_tx_time_; }

 private:
  friend class Tx;

  // Transactional wrappers (Algorithms 3-4).
  uint64_t TxRead(uint64_t addr);
  std::vector<uint64_t> TxReadMany(const std::vector<uint64_t>& addrs);
  void TxPrefetch(const std::vector<uint64_t>& addrs);
  void TxWrite(uint64_t addr, uint64_t value);
  void TxCommit();

  uint64_t ReadNormal(uint64_t addr, bool elastic_early);
  uint64_t ReadElasticValidated(uint64_t addr);
  void ValidateWindowOrAbort();

  void BeginAttempt();
  [[noreturn]] void AbortSelf(ConflictKind reason);
  // Durability (dedicated deployment only): after the write-back persist
  // and before releasing the write locks, ships the persisted (addr,
  // value) pairs to each owner partition's service as one kCommitLog and
  // waits for every kCommitLogAck. Holding the locks across the wait makes
  // per-address record order equal persist order.
  void LogCommitDurable();
  void ReleaseAllLocks();
  void CheckPendingAbort();
  // Fatal at the first transactional op after a contract violation: the
  // body swallowed Fiber::Unwound (the calling fiber is being unwound) or
  // TxAbortException (an abort is in flight for this attempt) with a
  // catch(...).
  void CheckBodyContract() const;

  // Sends a lock request and waits for the matching response, serving the
  // local DTM partition (multitasked) and recording abort notifications in
  // the meantime. Returns the response message.
  Message Rpc(uint32_t dst, Message request);
  void FireAndForget(uint32_t dst, Message msg);
  uint64_t WireMetric();
  void AcquireWriteLockOrAbort(uint64_t stripe, bool committing = false);

  // Like Rpc but accounts the waiting time and the `stripes` addresses the
  // request carries into the acquire-latency statistics.
  Message AcquireRpc(uint32_t dst, Message request, uint64_t stripes);

  // Pipelined batch acquisition. A kBatchAcquire is issued without waiting
  // for its reply; the in-flight table keyed by a per-runtime request id
  // matches interleaved replies back to their requests. At most
  // TmConfig::pipeline_depth requests are outstanding at once;
  // pipeline_depth == 1 reproduces the lockstep request/reply sequence —
  // and its statistics — bit for bit.
  struct InFlightAcquire {
    uint32_t node = 0;
    std::vector<uint64_t> stripes;  // the chunk, in request order
    bool is_write = false;
    SimTime issue_start = 0;  // local clock at issue, for acquire_time
  };

  // Issues one chunk towards `node`. Self-addressed requests (multitasked
  // deployment) resolve synchronously at the issue position, preserving
  // the lockstep ordering; everything else enters the in-flight table.
  void IssueBatch(uint32_t node, std::vector<uint64_t> stripes, bool is_write, bool committing);
  // Records a kBatchReply: the granted prefix enters the held-lock sets
  // immediately (an abort releases it with everything else — the protocol
  // is all-or-prefix, no service-side rollback); a refusal is noted in
  // pending_refusal_ for the caller to act on.
  void CompleteBatch(const Message& rsp);
  // Blocks until one in-flight batch completes, serving the local DTM
  // partition (multitasked) and recording abort notifications meanwhile.
  void WaitOneReply();
  void DrainInFlight();
  // Blocks until the prefetch covering `stripe` (if any) has resolved.
  void WaitForStripe(uint64_t stripe);
  // Acquires every per-node group: all chunks are issued before any reply
  // is awaited (up to pipeline_depth in flight), then the in-flight table
  // is drained and the first refusal aborts. Owner-local groups take the
  // fast path (LocalAcquireSpanOrAbort) instead of the wire.
  void AcquireGroupsOrAbort(const std::map<uint32_t, std::vector<uint64_t>>& by_node,
                            bool is_write, bool committing);

  // Owner-local fast path: this core is the responsible node for the
  // stripe and TmConfig::local_fast_path is on — call the local LockTable
  // directly (same CM arbitration and revocation semantics, zero
  // messages).
  bool LocalFastPathEligible(uint32_t node) const;
  void LocalAcquireSpanOrAbort(const std::vector<uint64_t>& stripes, bool is_write,
                               bool committing);
  // Scalar read-lock acquisition (fast path or kReadLockReq round trip);
  // records the stripe in the held-read-lock sets or aborts.
  void AcquireReadLockOrAbort(uint64_t stripe);

  CoreEnv& env_;
  TmConfig config_;
  AddressMap map_;
  DtmService* local_service_;
  Rng backoff_rng_;

  // Per-attempt state.
  uint64_t current_epoch_ = 0;
  bool in_tx_ = false;
  bool abort_thrown_ = false;  // a TxAbortException is in flight for this attempt
  bool pending_abort_ = false;
  ConflictKind pending_abort_kind_ = ConflictKind::kNone;
  SimTime attempt_start_local_ = 0;
  SimTime tx_start_local_ = 0;  // fixed across retries (Offset-Greedy rule a)
  std::unordered_map<uint64_t, uint64_t> write_buffer_;  // addr -> value
  std::vector<uint64_t> write_order_;                    // insertion order
  std::unordered_set<uint64_t> read_locks_;              // stripes held
  std::vector<uint64_t> read_lock_order_;                // for early release
  std::unordered_map<uint64_t, uint64_t> read_cache_;    // addr -> value
  std::unordered_set<uint64_t> write_locks_;             // stripes held
  std::deque<std::pair<uint64_t, uint64_t>> validation_window_;  // elastic-read
  // elastic-early: stripes whose read lock was early-released, with the
  // value read under the lock. A later write to one of these re-acquires
  // the lock and validates the value (the write depends on that read).
  std::unordered_map<uint64_t, uint64_t> early_released_values_;
  // elastic-read: last value read per address, for commit-time validation
  // of written locations.
  std::unordered_map<uint64_t, uint64_t> elastic_read_values_;

  // Pipelined-acquisition state. The request id counter spans attempts (a
  // stale reply can never match a live request: every abort path drains
  // the in-flight table before releasing locks); pending_refusal_ holds
  // the first refusal observed by a completion until an abort consumes it;
  // prefetch_pending_ maps a prefetched stripe to the request that will
  // deliver its lock.
  uint64_t next_request_id_ = 0;
  std::map<uint64_t, InFlightAcquire> inflight_;  // request id -> pending batch
  ConflictKind pending_refusal_ = ConflictKind::kNone;
  std::unordered_map<uint64_t, uint64_t> prefetch_pending_;  // stripe -> request id

  // Privatization barrier state: generation counter and early arrivals
  // from cores already in a later generation.
  uint64_t barrier_generation_ = 0;
  std::unordered_map<uint64_t, uint32_t> barrier_arrivals_;

  // Per-core CM metrics.
  uint64_t attempt_counter_ = 0;
  uint64_t commits_count_ = 0;        // Wholly priority
  SimTime effective_tx_time_ = 0;     // FairCM priority
  uint64_t consecutive_aborts_ = 0;   // Back-off-Retry state

  TxTraceSink* trace_ = nullptr;
  TxStats stats_;
};

inline uint64_t Tx::Read(uint64_t addr) { return rt_->TxRead(addr); }
inline void Tx::Write(uint64_t addr, uint64_t value) { rt_->TxWrite(addr, value); }
inline std::vector<uint64_t> Tx::ReadMany(const std::vector<uint64_t>& addrs) {
  return rt_->TxReadMany(addrs);
}
inline void Tx::Prefetch(const std::vector<uint64_t>& addrs) { rt_->TxPrefetch(addrs); }

}  // namespace tm2c

#endif  // TM2C_SRC_TM_TX_RUNTIME_H_

// Application-side transactional runtime (Section 3.3).
//
// One TxRuntime per application core. Transactions are written as lambdas
// over a Tx handle:
//
//   TxRuntime rt(env, config, address_map);
//   rt.Execute([&](Tx& tx) {
//     uint64_t v = tx.Read(account_a);
//     tx.Write(account_a, v - 10);
//     tx.Write(account_b, tx.Read(account_b) + 10);
//   });
//
// Reads are visible: the read lock is acquired from the responsible DTM
// node before the shared-memory read (Algorithm 4). Writes are deferred:
// buffered locally and persisted at commit after (lazily) acquiring the
// write locks (Algorithm 3); an eager write-lock mode exists as an
// ablation. Aborts restart the body; the body must therefore be free of
// side effects other than tx.Read/tx.Write (the paper's model).
//
// Elastic transactions (Section 6) are selected by TmConfig::tx_mode:
// kElasticEarly keeps only a sliding window of read locks, sending an early
// release for older ones; kElasticRead takes no read locks at all and
// value-validates the window instead.
//
// Control-flow contract: aborts and end-of-run teardown are delivered by
// exception (TxAbortException, Fiber::Unwound) THROUGH the transaction
// body. A body may catch its own exception types, but must never swallow
// these with a catch-all: the runtime detects both swallows and treats
// them as fatal programming errors (see tests/check_test.cc).
#ifndef TM2C_SRC_TM_TX_RUNTIME_H_
#define TM2C_SRC_TM_TX_RUNTIME_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/rng.h"
#include "src/runtime/core_env.h"
#include "src/tm/address_map.h"
#include "src/tm/config.h"
#include "src/tm/dtm_service.h"
#include "src/tm/stats.h"
#include "src/tm/trace.h"

namespace tm2c {

// Internal control-flow signal for aborts. Thrown only by the runtime and
// caught by Execute's retry loop; application code must not catch it.
struct TxAbortException {
  ConflictKind reason = ConflictKind::kNone;
};

class TxRuntime;

// Handle passed to transaction bodies.
class Tx {
 public:
  uint64_t Read(uint64_t addr);
  void Write(uint64_t addr, uint64_t value);

  // Visible-read batch: acquires the read locks for every address in
  // `addrs`, grouped by responsible node and flushed as kBatchAcquire
  // messages of at most TmConfig::max_batch entries, then performs the
  // shared-memory reads. Semantically identical to calling Read() per
  // address under TxMode::kNormal; the elastic modes and max_batch == 1
  // fall back to exactly that.
  std::vector<uint64_t> ReadMany(const std::vector<uint64_t>& addrs);

 private:
  friend class TxRuntime;
  explicit Tx(TxRuntime* rt) : rt_(rt) {}
  TxRuntime* rt_;
};

class TxRuntime {
 public:
  // `local_service` must be non-null in the multitasked deployment: it is
  // used to serve incoming DTM requests while this core waits for its own
  // responses and to process self-addressed requests synchronously.
  TxRuntime(CoreEnv& env, const TmConfig& config, const AddressMap& map,
            DtmService* local_service = nullptr);

  // Runs `body` as one transaction, retrying on aborts until it commits.
  void Execute(const std::function<void(Tx&)>& body);

  // Like Execute but gives up after `max_attempts` attempts. Returns true
  // on commit. Used by the livelock/starvation property tests.
  bool TryExecute(const std::function<void(Tx&)>& body, uint64_t max_attempts);

  // Drains pending inbox messages: records abort notifications for the
  // running attempt and (in the multitasked deployment) serves incoming DTM
  // requests. Called automatically at every transaction start; long-running
  // non-transactional phases may call it explicitly to model a coroutine
  // yield point.
  void ServePending();

  // Privatization barrier (Section 8): blocks until every application core
  // has reached its matching barrier call, implemented with the message
  // paths among the application cores — after it returns, all transactions
  // started before the barrier have completed on every core, so data can
  // safely be accessed non-transactionally. Must be called outside a
  // transaction, the same number of times on every application core.
  void PrivatizationBarrier();

  TxStats& stats() { return stats_; }
  const TmConfig& config() const { return config_; }
  CoreEnv& env() { return env_; }

  // Attaches the execution-trace recorder (verification harnesses only;
  // see src/tm/trace.h for the single-threaded-backend caveat).
  void set_trace(TxTraceSink* trace) { trace_ = trace; }

  // CM bookkeeping, exposed for tests.
  uint64_t commits_count() const { return commits_count_; }
  SimTime effective_tx_time() const { return effective_tx_time_; }

 private:
  friend class Tx;

  // Transactional wrappers (Algorithms 3-4).
  uint64_t TxRead(uint64_t addr);
  std::vector<uint64_t> TxReadMany(const std::vector<uint64_t>& addrs);
  void TxWrite(uint64_t addr, uint64_t value);
  void TxCommit();

  uint64_t ReadNormal(uint64_t addr, bool elastic_early);
  uint64_t ReadElasticValidated(uint64_t addr);
  void ValidateWindowOrAbort();

  void BeginAttempt();
  [[noreturn]] void AbortSelf(ConflictKind reason);
  void ReleaseAllLocks();
  void CheckPendingAbort();
  // Fatal at the first transactional op after a contract violation: the
  // body swallowed Fiber::Unwound (the calling fiber is being unwound) or
  // TxAbortException (an abort is in flight for this attempt) with a
  // catch(...).
  void CheckBodyContract() const;

  // Sends a lock request and waits for the matching response, serving the
  // local DTM partition (multitasked) and recording abort notifications in
  // the meantime. Returns the response message.
  Message Rpc(uint32_t dst, Message request);
  void FireAndForget(uint32_t dst, Message msg);
  uint64_t WireMetric();
  void AcquireWriteLockOrAbort(uint64_t stripe, bool committing = false);

  // Like Rpc but accounts the waiting time and the `stripes` addresses the
  // request carries into the acquire-latency statistics.
  Message AcquireRpc(uint32_t dst, Message request, uint64_t stripes);

  // Flushes one node's pending acquisitions (all write locks or all read
  // locks) as kBatchAcquire messages of at most max_batch addresses each.
  // Every granted prefix is recorded in the held-lock sets before the
  // refusal check, so an abort releases it with everything else (the
  // protocol is all-or-prefix: no service-side rollback).
  void AcquireBatchesOrAbort(uint32_t node, const std::vector<uint64_t>& stripes, bool is_write,
                             bool committing);

  CoreEnv& env_;
  TmConfig config_;
  AddressMap map_;
  DtmService* local_service_;
  Rng backoff_rng_;

  // Per-attempt state.
  uint64_t current_epoch_ = 0;
  bool in_tx_ = false;
  bool abort_thrown_ = false;  // a TxAbortException is in flight for this attempt
  bool pending_abort_ = false;
  ConflictKind pending_abort_kind_ = ConflictKind::kNone;
  SimTime attempt_start_local_ = 0;
  SimTime tx_start_local_ = 0;  // fixed across retries (Offset-Greedy rule a)
  std::unordered_map<uint64_t, uint64_t> write_buffer_;  // addr -> value
  std::vector<uint64_t> write_order_;                    // insertion order
  std::unordered_set<uint64_t> read_locks_;              // stripes held
  std::vector<uint64_t> read_lock_order_;                // for early release
  std::unordered_map<uint64_t, uint64_t> read_cache_;    // addr -> value
  std::unordered_set<uint64_t> write_locks_;             // stripes held
  std::deque<std::pair<uint64_t, uint64_t>> validation_window_;  // elastic-read
  // elastic-early: stripes whose read lock was early-released, with the
  // value read under the lock. A later write to one of these re-acquires
  // the lock and validates the value (the write depends on that read).
  std::unordered_map<uint64_t, uint64_t> early_released_values_;
  // elastic-read: last value read per address, for commit-time validation
  // of written locations.
  std::unordered_map<uint64_t, uint64_t> elastic_read_values_;

  // Privatization barrier state: generation counter and early arrivals
  // from cores already in a later generation.
  uint64_t barrier_generation_ = 0;
  std::unordered_map<uint64_t, uint32_t> barrier_arrivals_;

  // Per-core CM metrics.
  uint64_t attempt_counter_ = 0;
  uint64_t commits_count_ = 0;        // Wholly priority
  SimTime effective_tx_time_ = 0;     // FairCM priority
  uint64_t consecutive_aborts_ = 0;   // Back-off-Retry state

  TxTraceSink* trace_ = nullptr;
  TxStats stats_;
};

inline uint64_t Tx::Read(uint64_t addr) { return rt_->TxRead(addr); }
inline void Tx::Write(uint64_t addr, uint64_t value) { rt_->TxWrite(addr, value); }
inline std::vector<uint64_t> Tx::ReadMany(const std::vector<uint64_t>& addrs) {
  return rt_->TxReadMany(addrs);
}

}  // namespace tm2c

#endif  // TM2C_SRC_TM_TX_RUNTIME_H_

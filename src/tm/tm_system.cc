#include "src/tm/tm_system.h"

#include "src/common/check.h"
#include "src/tm/wire_trace.h"

namespace tm2c {
namespace {

std::unique_ptr<SystemBackend> MakeBackend(const TmSystemConfig& config) {
  if (config.backend == BackendKind::kSim) {
    return std::make_unique<SimSystem>(config.sim);
  }
  if (config.backend == BackendKind::kProcesses) {
    TM2C_CHECK_MSG(config.sim.strategy == DeployStrategy::kDedicated,
                   "the process backend is dedicated-only (a partition server "
                   "process cannot interleave an application task)");
    ProcessSystemConfig pcfg;
    pcfg.platform = config.sim.platform;
    pcfg.num_cores = config.sim.num_cores;
    pcfg.num_service = config.sim.num_service;
    pcfg.shmem_bytes = config.sim.shmem_bytes;
    pcfg.run_dir = config.run_dir;
    return std::make_unique<ProcessSystem>(pcfg);
  }
  ThreadSystemConfig tcfg;
  tcfg.platform = config.sim.platform;
  tcfg.num_cores = config.sim.num_cores;
  tcfg.num_service = config.sim.num_service;
  tcfg.strategy = config.sim.strategy;
  tcfg.shmem_bytes = config.sim.shmem_bytes;
  tcfg.channel = config.channel;
  tcfg.pin_threads = config.pin_threads;
  tcfg.channel_capacity = config.channel_capacity;
  return std::make_unique<ThreadSystem>(tcfg);
}

}  // namespace

TmSystem::TmSystem(TmSystemConfig config)
    : config_(std::move(config)),
      system_(MakeBackend(config_)),
      map_(system_->deployment(), config_.tm.stripe_bytes) {
  const DeploymentPlan& plan = system_->deployment();
  TM2C_CHECK_MSG(config_.tm.max_batch >= 1 && config_.tm.max_batch <= kMaxBatchEntries,
                 "max_batch must be in [1, kMaxBatchEntries]");
  TM2C_CHECK_MSG(config_.tm.pipeline_depth >= 1 && config_.tm.pipeline_depth <= 64,
                 "pipeline_depth must be in [1, 64]");
  // Per-core abort status words (see TmConfig::abort_status_base).
  if (config_.tm.abort_status_base == TmConfig::kNoAbortStatus) {
    config_.tm.abort_status_base =
        system_->allocator().AllocGlobal(static_cast<uint64_t>(plan.num_cores()) * kWordBytes);
    for (uint32_t c = 0; c < plan.num_cores(); ++c) {
      system_->shmem().StoreWord(config_.tm.abort_status_base + c * kWordBytes, 0);
    }
  }
  bodies_.resize(plan.num_app());
  apps_running_.store(plan.num_app(), std::memory_order_relaxed);

  if (plan.strategy() == DeployStrategy::kDedicated) {
    // Service cores run the DTM loop; app cores run their body with a
    // TxRuntime that has no local partition.
    services_.reserve(plan.num_service());
    if (config_.tm.durability != DurabilityMode::kOff) {
      durability_.reserve(plan.num_service());
    }
    for (uint32_t p = 0; p < plan.num_service(); ++p) {
      const uint32_t core = plan.ServiceCore(p);
      auto service = std::make_unique<DtmService>(system_->env(core), config_.tm, &map_);
      if (config_.tm.durability != DurabilityMode::kOff) {
        PartitionDurability::Options opts;
        opts.mode = config_.tm.durability;
        opts.checkpoint_every_records = config_.tm.checkpoint_every_records;
        if (config_.backend == BackendKind::kProcesses) {
          // The log must survive the server process: back it with a file
          // in the run directory so a restarted standby can recover it.
          opts.path = config_.run_dir + "/part" + std::to_string(p) + ".wal";
        }
        durability_.push_back(std::make_unique<PartitionDurability>(p, opts));
        service->AttachDurability(durability_.back().get());
      }
      DtmService* svc = service.get();
      system_->SetCoreMain(core, [svc](CoreEnv&) { svc->RunLoop(); });
      services_.push_back(std::move(service));
    }
    runtimes_.reserve(plan.num_app());
    for (uint32_t i = 0; i < plan.num_app(); ++i) {
      const uint32_t core = plan.app_cores()[i];
      runtimes_.push_back(
          std::make_unique<TxRuntime>(system_->env(core), config_.tm, map_, nullptr));
      TxRuntime* rt = runtimes_.back().get();
      system_->SetCoreMain(core, [this, i, rt](CoreEnv& env) {
        if (bodies_[i]) {
          bodies_[i](env, *rt);
        }
        OnAppBodyDone();
      });
    }
    if (config_.backend == BackendKind::kProcesses) {
      WireProcessBackend();
    }
    return;
  }

  // Multitasked: every core hosts a DTM partition and an application task.
  // Durability is dedicated-only: a self-addressed kCommitLog (or two
  // cores awaiting each other's deferred group-commit acks) would
  // deadlock the multitasked serve loops.
  TM2C_CHECK_MSG(config_.tm.durability == DurabilityMode::kOff,
                 "durability requires the dedicated deployment");
  services_.reserve(plan.num_cores());
  runtimes_.reserve(plan.num_cores());
  for (uint32_t core = 0; core < plan.num_cores(); ++core) {
    auto service = std::make_unique<DtmService>(system_->env(core), config_.tm, &map_);
    runtimes_.push_back(
        std::make_unique<TxRuntime>(system_->env(core), config_.tm, map_, service.get()));
    services_.push_back(std::move(service));
    TxRuntime* rt = runtimes_.back().get();
    const uint32_t i = core;  // app index == core id under multitasking
    system_->SetCoreMain(core, [this, i, rt](CoreEnv& env) {
      if (bodies_[i]) {
        bodies_[i](env, *rt);
      }
      OnAppBodyDone();
      // The application task finished; keep serving DTM requests so other
      // cores' transactions can still make progress (the libtask scheduler
      // would keep running the service coroutine). The simulator run ends
      // when its events drain; the thread backend ends on the kShutdown
      // the last app body broadcast.
      for (;;) {
        Message msg = env.Recv();
        if (msg.type == MsgType::kShutdown) {
          return;
        }
        if (msg.type == MsgType::kAbortNotify) {
          continue;  // stale: our transactions are done
        }
        TM2C_CHECK(services_[i]->HandleMessage(msg));
      }
    });
  }
}

void TmSystem::WireProcessBackend() {
  // The partition-side directory flip of a migration would happen in the
  // server's copy-on-write heap and never reach the host runtimes' shared
  // ownership directory, silently splitting the system's view of a stripe.
  TM2C_CHECK_MSG(config_.tm.migrate_check_every == 0,
                 "live migration is not supported on the process backend "
                 "(the ownership directory is not shared across processes)");
  auto* proc = static_cast<ProcessSystem*>(system_.get());
  proc->SetAbortStatusBase(config_.tm.abort_status_base);

  // The WAL backing files' stdio buffers must not be duplicated into the
  // children: each would flush its inherited copy on exit and double the
  // host-side load-phase records (checkpoint 0 seals, notably).
  proc->SetPreForkHook([this]() {
    for (auto& dur : durability_) {
      dur->FlushBackingFile();
    }
  });

  // Runs inside the freshly forked (or restarted) partition server. The
  // sink is leaked deliberately: the child _exits, it never unwinds.
  proc->SetChildStart([this](uint32_t partition, bool is_restart, CoreEnv& env) {
    auto* sink = new WireTraceSink(&env);
    services_[partition]->set_trace(sink);
    if (is_restart && !durability_.empty()) {
      // Attach the sink first so the recovery's OnWalTruncate reaches the
      // host — the oracle's only evidence that the torn tail was dropped.
      services_[partition]->SetRecoveredCommits(durability_[partition]->RecoverFromBackingFile());
    }
  });

  // The child's parting report: lock-table occupancy first (the host-side
  // AllLockTablesEmpty source of truth), then every DtmServiceStats field
  // in declaration order (see ServiceStats for the mirror decode).
  proc->SetChildExitReport([this](uint32_t partition) {
    const DtmService& svc = *services_[partition];
    const DtmServiceStats& s = svc.stats();
    Message msg;
    msg.type = MsgType::kHostStats;
    msg.extra = {static_cast<uint64_t>(svc.lock_table().NumEntries()),
                 s.requests,
                 s.releases,
                 s.notifications_sent,
                 s.stale_requests_refused,
                 s.batch_requests,
                 s.batch_entries,
                 s.misrouted_refused,
                 s.local_direct_requests,
                 s.local_direct_entries,
                 s.commit_records,
                 s.log_flushes,
                 s.migrations_started,
                 s.migrations_completed,
                 s.migrating_refused,
                 s.overload_refused};
    return msg;
  });

  // Server-side durability events arriving as kTrace* frames, replayed
  // into the attached sink on the partition's router thread (AttachTrace
  // requires a MutexTraceSink here for exactly this reason).
  proc->SetHostFrameHandler([this](uint32_t partition, const Message& msg) {
    TxTraceSink* sink = attached_trace_;
    if (sink == nullptr) {
      return;
    }
    switch (msg.type) {
      case MsgType::kTraceWalAppend: {
        TM2C_CHECK(msg.extra.size() % 2 == 0);
        std::vector<std::pair<uint64_t, uint64_t>> pairs;
        pairs.reserve(msg.extra.size() / 2);
        for (size_t i = 0; i + 1 < msg.extra.size(); i += 2) {
          pairs.emplace_back(msg.extra[i], msg.extra[i + 1]);
        }
        sink->OnWalAppend(partition, static_cast<uint32_t>(msg.w2), msg.w1, msg.w0, pairs);
        break;
      }
      case MsgType::kTraceCommitLogAck:
        sink->OnCommitLogAck(partition, static_cast<uint32_t>(msg.w2), msg.w1, msg.w0);
        break;
      case MsgType::kTraceWalFlush:
        sink->OnWalFlush(partition, msg.w0, msg.w1);
        break;
      case MsgType::kTraceCheckpoint:
        sink->OnCheckpoint(partition, msg.w0, msg.w1);
        break;
      case MsgType::kTraceWalTruncate:
        sink->OnWalTruncate(partition, msg.w0, msg.w1);
        break;
      default:
        TM2C_FATAL("unexpected host-bound frame type");
    }
  });
}

void TmSystem::OnAppBodyDone() {
  if (system_->is_simulated()) {
    return;  // the simulator ends the run by draining its event queue
  }
  if (apps_running_.fetch_sub(1, std::memory_order_acq_rel) != 1) {
    return;
  }
  // Last application body to finish: wake every core still blocked in a
  // service loop. All transactions are complete, so the only in-flight
  // messages are one-way (releases, stale notifications) — a service that
  // drains its rings before seeing the injected shutdown loses nothing.
  const DeploymentPlan& plan = system_->deployment();
  if (plan.strategy() == DeployStrategy::kDedicated) {
    for (uint32_t core : plan.service_cores()) {
      system_->RequestShutdown(core);
    }
  } else {
    for (uint32_t core = 0; core < plan.num_cores(); ++core) {
      system_->RequestShutdown(core);
    }
  }
}

void TmSystem::SetAppBody(uint32_t app_index, AppBody body) {
  TM2C_CHECK(app_index < bodies_.size());
  bodies_[app_index] = std::move(body);
}

void TmSystem::SetAllAppBodies(const AppBody& body) {
  for (auto& b : bodies_) {
    b = body;
  }
}

void TmSystem::AttachTrace(TxTraceSink* trace) {
  TM2C_CHECK_MSG(system_->is_simulated() || config_.backend == BackendKind::kProcesses,
                 "execution traces: simulator (any sink) or process backend "
                 "(MutexTraceSink only) — the thread backend has no ordered "
                 "event stream to trace");
  attached_trace_ = trace;
  for (auto& rt : runtimes_) {
    rt->set_trace(trace);
  }
  // Under processes this reaches only the host's pre-fork service images;
  // the child-start hook replaces each child's sink with a WireTraceSink
  // whose events come back as kTrace* frames (see WireProcessBackend).
  for (auto& service : services_) {
    service->set_trace(trace);
  }
}

PartitionDurability& TmSystem::DurabilityAt(uint32_t partition) {
  TM2C_CHECK_MSG(partition < durability_.size(),
                 "DurabilityAt: durability off or bad partition index");
  return *durability_[partition];
}

void TmSystem::CaptureDurableCheckpoint0() {
  TM2C_CHECK_MSG(!durability_.empty(), "durability is off");
  // Imaged by durable home, not current lock owner: the checkpoint must
  // live in the WAL that replays the slab, and migration never moves that.
  map_.ForEachDurableRange([this](uint64_t base, uint64_t bytes, uint32_t partition) {
    PartitionDurability& dur = *durability_[partition];
    for (uint64_t addr = base; addr < base + bytes; addr += kWordBytes) {
      dur.CaptureInitial(addr, system_->shmem().LoadWord(addr));
    }
  });
  for (auto& dur : durability_) {
    dur->SealInitialCheckpoint();
  }
}

SimTime TmSystem::Run(SimTime until) {
  const SimTime elapsed = system_->Run(until);
  // Horizon/shutdown quiesce: a service fiber can be frozen between a
  // record append and its group-commit flush. The records are in the log;
  // force them durable so post-run accounting is exact (commit_records ==
  // flushed records) and the final WAL image matches the final KV state.
  // Not under processes: the host's services are stale pre-fork images,
  // and every partition server already flushed on its kShutdown path.
  if (config_.backend != BackendKind::kProcesses) {
    for (auto& service : services_) {
      service->QuiesceFlush();
    }
  }
  return elapsed;
}

SimSystem& TmSystem::sim() {
  TM2C_CHECK_MSG(config_.backend == BackendKind::kSim,
                 "sim() is only valid on the simulator backend");
  return static_cast<SimSystem&>(*system_);
}

ProcessSystem& TmSystem::process() {
  TM2C_CHECK_MSG(config_.backend == BackendKind::kProcesses,
                 "process() is only valid on the process backend");
  return static_cast<ProcessSystem&>(*system_);
}

DtmServiceStats TmSystem::ServiceStats(uint32_t partition) const {
  TM2C_CHECK(partition < services_.size());
  if (config_.backend != BackendKind::kProcesses) {
    return services_[partition]->stats();
  }
  auto* proc = static_cast<ProcessSystem*>(system_.get());
  const std::vector<uint64_t> report = proc->host_stats(partition);
  // Layout built by the child-exit-report hook: [lock-table entries,
  // then DtmServiceStats fields in declaration order].
  TM2C_CHECK_MSG(report.size() == 16, "partition server exit report missing or malformed");
  DtmServiceStats s;
  s.requests = report[1];
  s.releases = report[2];
  s.notifications_sent = report[3];
  s.stale_requests_refused = report[4];
  s.batch_requests = report[5];
  s.batch_entries = report[6];
  s.misrouted_refused = report[7];
  s.local_direct_requests = report[8];
  s.local_direct_entries = report[9];
  s.commit_records = report[10];
  s.log_flushes = report[11];
  s.migrations_started = report[12];
  s.migrations_completed = report[13];
  s.migrating_refused = report[14];
  s.overload_refused = report[15];
  return s;
}

const TxStats& TmSystem::AppStats(uint32_t app_index) const {
  TM2C_CHECK(app_index < runtimes_.size());
  return runtimes_[app_index]->stats();
}

TxStats TmSystem::MergedStats() const {
  TxStats total;
  for (const auto& rt : runtimes_) {
    total.Merge(rt->stats());
  }
  return total;
}

const DtmService& TmSystem::ServiceAt(uint32_t partition) const {
  TM2C_CHECK(partition < services_.size());
  return *services_[partition];
}

bool TmSystem::AllLockTablesEmpty() const {
  if (config_.backend == BackendKind::kProcesses) {
    // The live tables died with the servers; each exit report leads with
    // its final occupancy. A missing report (server never exited cleanly)
    // counts as non-empty.
    auto* proc = static_cast<ProcessSystem*>(system_.get());
    for (uint32_t p = 0; p < system_->deployment().num_service(); ++p) {
      const std::vector<uint64_t> report = proc->host_stats(p);
      if (report.empty() || report[0] != 0) {
        return false;
      }
    }
    return true;
  }
  for (const auto& service : services_) {
    if (service->lock_table().NumEntries() != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace tm2c

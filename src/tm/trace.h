// Execution-trace hook for the verification subsystem (src/check/).
//
// TxRuntime and DtmService call into an optional TxTraceSink at the
// semantically meaningful instants of the protocol: attempt begin, each
// shared-memory read with the observed value, each commit-time persist,
// the commit/abort outcome, and service-side revocations. The sink is
// defined here (tm layer) so the tm code does not depend on src/check/;
// the concrete recorder (check::History) implements this interface.
//
// The hooks are fully ordered only under the deterministic single-threaded
// simulator backend: the recorder relies on call order being the real
// execution order. Do not attach a bare sink under the std::thread
// backend. The process backend records *durability* events through a
// MutexTraceSink (below): per-partition durability call order is preserved
// by the partition's socket FIFO, which is all the crash-restart oracle
// needs — the serializability oracle still requires the simulator.
#ifndef TM2C_SRC_TM_TRACE_H_
#define TM2C_SRC_TM_TRACE_H_

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "src/runtime/message.h"
#include "src/sim/time.h"

namespace tm2c {

class TxTraceSink {
 public:
  virtual ~TxTraceSink() = default;

  // A transaction attempt started on `core` with the given epoch.
  virtual void OnTxBegin(uint32_t core, uint64_t epoch, SimTime now) = 0;

  // The running attempt on `core` read `addr` from shared memory and
  // observed `value`. Buffered (read-own-write) and cached re-reads are not
  // reported: they carry no new information about the shared state.
  virtual void OnTxRead(uint32_t core, uint64_t addr, uint64_t value) = 0;

  // The committing attempt on `core` persisted `value` to `addr`. Reported
  // per word, in store order, at the instant of the actual store.
  virtual void OnTxPersist(uint32_t core, uint64_t addr, uint64_t value) = 0;

  // Outcome of the attempt on `core`.
  virtual void OnTxCommit(uint32_t core, SimTime now) = 0;
  virtual void OnTxAbort(uint32_t core, SimTime now, ConflictKind reason) = 0;

  // The DTM service on `service_core` revoked the locks of the attempt
  // (victim_core, victim_epoch). Recorded even when a planted fault
  // suppresses the delivery of the revocation to the victim.
  virtual void OnRevocation(uint32_t service_core, uint32_t victim_core, uint64_t victim_epoch,
                            ConflictKind kind) = 0;

  // Pipelined acquisition visibility: the attempt on `core` issued a batch
  // acquisition of `n` stripes (request `request_id`) towards `node`, and
  // later completed it with `granted` stripes (refusal kind `kind`, kNone
  // when fully granted). Issue and completion are separate events because
  // pipelining (TmConfig::pipeline_depth > 1) widens the schedule space
  // between them — the oracle must see requests outstanding concurrently.
  // Owner-local fast-path spans complete at their issue instant. Default
  // no-ops so existing sinks observe the protocol unchanged.
  virtual void OnAcquireIssue(uint32_t core, uint64_t request_id, uint32_t node, uint32_t n,
                              bool is_write) {
    (void)core, (void)request_id, (void)node, (void)n, (void)is_write;
  }
  virtual void OnAcquireComplete(uint32_t core, uint64_t request_id, uint32_t granted,
                                 ConflictKind kind) {
    (void)core, (void)request_id, (void)granted, (void)kind;
  }

  // Durability visibility (src/durability/): the crash-restart oracle
  // reconstructs per-partition durable watermarks from these events.
  // Default no-ops so durability-off runs record identical histories.
  //
  // The service appended (core, epoch)'s write set as log record
  // `record_index` of `partition`.
  virtual void OnWalAppend(uint32_t partition, uint32_t core, uint64_t epoch,
                           uint64_t record_index,
                           const std::vector<std::pair<uint64_t, uint64_t>>& pairs) {
    (void)partition, (void)core, (void)epoch, (void)record_index, (void)pairs;
  }
  // The service acknowledged record `record_index` back to the committer.
  // With a correct protocol this happens only after the covering flush;
  // FaultMode::kAckBeforeLogFlush inverts the order.
  virtual void OnCommitLogAck(uint32_t partition, uint32_t core, uint64_t epoch,
                              uint64_t record_index) {
    (void)partition, (void)core, (void)epoch, (void)record_index;
  }
  // The group-commit flush advanced `partition`'s durable watermark.
  virtual void OnWalFlush(uint32_t partition, uint64_t durable_records,
                          uint64_t durable_bytes) {
    (void)partition, (void)durable_records, (void)durable_bytes;
  }
  // A periodic checkpoint covering the first `records_covered` records.
  virtual void OnCheckpoint(uint32_t partition, uint64_t checkpoint_index,
                            uint64_t records_covered) {
    (void)partition, (void)checkpoint_index, (void)records_covered;
  }
  // A restarted partition server truncated its WAL back to the valid
  // prefix: `records_remaining` records / `valid_bytes` bytes survive;
  // appends beyond them were legitimately lost with the dead process.
  virtual void OnWalTruncate(uint32_t partition, uint64_t records_remaining,
                             uint64_t valid_bytes) {
    (void)partition, (void)records_remaining, (void)valid_bytes;
  }

  // Migration visibility (the migration oracle's inputs; default no-ops so
  // migration-free runs record identical histories).
  //
  // The service on `service_core` granted `requester_core` a lock on
  // `stripe` (scalar, batch entry, or local span entry — one event per
  // granted stripe). The migration oracle cross-checks each grant against
  // the drain windows and the ownership directory: a grant by a core that
  // is draining the stripe's range, or by a core that no longer owns it,
  // is the violation the planted kGrantDuringMigration fault manufactures.
  virtual void OnLockGrant(uint32_t service_core, uint32_t requester_core, uint64_t stripe) {
    (void)service_core, (void)requester_core, (void)stripe;
  }
  // The service on `from_core` began draining [base, base + bytes) for
  // migration towards `to_core`'s partition.
  virtual void OnMigrationBegin(uint32_t from_core, uint32_t to_core, uint64_t base,
                                uint64_t bytes) {
    (void)from_core, (void)to_core, (void)base, (void)bytes;
  }
  // The drain finished and the ownership directory flipped to `to_core`'s
  // partition at directory version `version`.
  virtual void OnMigrationComplete(uint32_t from_core, uint32_t to_core, uint64_t base,
                                   uint64_t bytes, uint64_t version) {
    (void)from_core, (void)to_core, (void)base, (void)bytes, (void)version;
  }
};

// Serializes concurrent hook calls onto an underlying sink with one mutex.
// The process backend's app threads and partition-router threads all feed
// the same History; this wrapper makes each event atomic and assigns it
// one global sequence position. Cross-thread event order is whatever the
// lock arbitration yields — fine for the crash-restart oracle (which only
// needs per-partition durability order and per-core transaction order,
// both preserved by their single-threaded sources), NOT fine for the
// serializability oracle (which needs the simulator's total order).
class MutexTraceSink : public TxTraceSink {
 public:
  explicit MutexTraceSink(TxTraceSink* wrapped) : wrapped_(wrapped) {}

  void OnTxBegin(uint32_t core, uint64_t epoch, SimTime now) override {
    std::lock_guard<std::mutex> lock(mu_);
    wrapped_->OnTxBegin(core, epoch, now);
  }
  void OnTxRead(uint32_t core, uint64_t addr, uint64_t value) override {
    std::lock_guard<std::mutex> lock(mu_);
    wrapped_->OnTxRead(core, addr, value);
  }
  void OnTxPersist(uint32_t core, uint64_t addr, uint64_t value) override {
    std::lock_guard<std::mutex> lock(mu_);
    wrapped_->OnTxPersist(core, addr, value);
  }
  void OnTxCommit(uint32_t core, SimTime now) override {
    std::lock_guard<std::mutex> lock(mu_);
    wrapped_->OnTxCommit(core, now);
  }
  void OnTxAbort(uint32_t core, SimTime now, ConflictKind reason) override {
    std::lock_guard<std::mutex> lock(mu_);
    wrapped_->OnTxAbort(core, now, reason);
  }
  void OnRevocation(uint32_t service_core, uint32_t victim_core, uint64_t victim_epoch,
                    ConflictKind kind) override {
    std::lock_guard<std::mutex> lock(mu_);
    wrapped_->OnRevocation(service_core, victim_core, victim_epoch, kind);
  }
  void OnAcquireIssue(uint32_t core, uint64_t request_id, uint32_t node, uint32_t n,
                      bool is_write) override {
    std::lock_guard<std::mutex> lock(mu_);
    wrapped_->OnAcquireIssue(core, request_id, node, n, is_write);
  }
  void OnAcquireComplete(uint32_t core, uint64_t request_id, uint32_t granted,
                         ConflictKind kind) override {
    std::lock_guard<std::mutex> lock(mu_);
    wrapped_->OnAcquireComplete(core, request_id, granted, kind);
  }
  void OnWalAppend(uint32_t partition, uint32_t core, uint64_t epoch, uint64_t record_index,
                   const std::vector<std::pair<uint64_t, uint64_t>>& pairs) override {
    std::lock_guard<std::mutex> lock(mu_);
    wrapped_->OnWalAppend(partition, core, epoch, record_index, pairs);
  }
  void OnCommitLogAck(uint32_t partition, uint32_t core, uint64_t epoch,
                      uint64_t record_index) override {
    std::lock_guard<std::mutex> lock(mu_);
    wrapped_->OnCommitLogAck(partition, core, epoch, record_index);
  }
  void OnWalFlush(uint32_t partition, uint64_t durable_records,
                  uint64_t durable_bytes) override {
    std::lock_guard<std::mutex> lock(mu_);
    wrapped_->OnWalFlush(partition, durable_records, durable_bytes);
  }
  void OnCheckpoint(uint32_t partition, uint64_t checkpoint_index,
                    uint64_t records_covered) override {
    std::lock_guard<std::mutex> lock(mu_);
    wrapped_->OnCheckpoint(partition, checkpoint_index, records_covered);
  }
  void OnWalTruncate(uint32_t partition, uint64_t records_remaining,
                     uint64_t valid_bytes) override {
    std::lock_guard<std::mutex> lock(mu_);
    wrapped_->OnWalTruncate(partition, records_remaining, valid_bytes);
  }
  void OnLockGrant(uint32_t service_core, uint32_t requester_core, uint64_t stripe) override {
    std::lock_guard<std::mutex> lock(mu_);
    wrapped_->OnLockGrant(service_core, requester_core, stripe);
  }
  void OnMigrationBegin(uint32_t from_core, uint32_t to_core, uint64_t base,
                        uint64_t bytes) override {
    std::lock_guard<std::mutex> lock(mu_);
    wrapped_->OnMigrationBegin(from_core, to_core, base, bytes);
  }
  void OnMigrationComplete(uint32_t from_core, uint32_t to_core, uint64_t base, uint64_t bytes,
                           uint64_t version) override {
    std::lock_guard<std::mutex> lock(mu_);
    wrapped_->OnMigrationComplete(from_core, to_core, base, bytes, version);
  }

 private:
  TxTraceSink* wrapped_;
  std::mutex mu_;
};

}  // namespace tm2c

#endif  // TM2C_SRC_TM_TRACE_H_

#include "src/tm/dtm_service.h"

#include "src/common/check.h"
#include "src/common/log.h"
#include "src/durability/partition_log.h"

namespace tm2c {

DtmService::DtmService(CoreEnv& env, const TmConfig& config, const AddressMap* map)
    : env_(env), config_(config), map_(map), cm_(MakeContentionManager(config.cm)) {}

void DtmService::AttachDurability(PartitionDurability* durability) {
  durability_ = durability;
  if (durability_ != nullptr && trace_ != nullptr) {
    durability_->set_trace(trace_);
  }
}

void DtmService::set_trace(TxTraceSink* trace) {
  trace_ = trace;
  if (durability_ != nullptr) {
    durability_->set_trace(trace);
  }
}

void DtmService::RunLoop() {
  if (durability_ == nullptr) {
    // The pre-durability loop, byte-identical in behaviour and timing.
    for (;;) {
      Message msg = env_.Recv();
      if (msg.type == MsgType::kShutdown) {
        return;
      }
      TM2C_CHECK_MSG(HandleMessage(msg), "non-DTM message reached a dedicated service core");
    }
  }
  // Durable variant: before blocking on an empty inbox, close the open
  // group-commit window — a committer may be waiting on a deferred ack,
  // and nothing else would ever trigger the flush.
  for (;;) {
    Message msg;
    if (!env_.TryRecv(&msg)) {
      FlushCommitLog();
      msg = env_.Recv();
    }
    if (msg.type == MsgType::kShutdown) {
      FlushCommitLog();
      return;
    }
    TM2C_CHECK_MSG(HandleMessage(msg), "non-DTM message reached a dedicated service core");
  }
}

bool DtmService::HandleMessage(const Message& msg) {
  switch (msg.type) {
    case MsgType::kEcho: {
      // Latency probe: respond immediately (Figure 8(a) methodology).
      Message rsp;
      rsp.type = MsgType::kEchoRsp;
      rsp.w0 = msg.w0;
      env_.Send(msg.src, std::move(rsp));
      return true;
    }
    case MsgType::kReadLockReq:
    case MsgType::kWriteLockReq:
    case MsgType::kBatchAcquire: {
      Message rsp = Process(msg);
      TM2C_DCHECK(rsp.type != MsgType::kInvalid);
      env_.Send(msg.src, std::move(rsp));
      return true;
    }
    case MsgType::kReadRelease:
    case MsgType::kWriteRelease:
    case MsgType::kReleaseAllReads:
    case MsgType::kReleaseAllWrites:
    case MsgType::kEarlyReadRelease:
      HandleRelease(msg);
      return true;
    case MsgType::kCommitLog:
      HandleCommitLog(msg);
      return true;
    case MsgType::kMigrateRange:
      BeginMigration(msg.w0, msg.w1, static_cast<uint32_t>(msg.w2));
      return true;
    case MsgType::kOwnershipUpdate:
      // The ownership directory is shared state; the broadcast only exists
      // to wake peers out of stale routing promptly. Nothing to apply.
      return true;
    default:
      return false;
  }
}

Message DtmService::HandleLocal(const Message& request) {
  return Process(request);
}

Message DtmService::Process(const Message& msg) {
  switch (msg.type) {
    case MsgType::kReadLockReq:
      return HandleAcquire(msg, /*is_write=*/false);
    case MsgType::kWriteLockReq:
      return HandleAcquire(msg, /*is_write=*/true);
    case MsgType::kBatchAcquire:
      return HandleBatchAcquire(msg);
    case MsgType::kReadRelease:
    case MsgType::kWriteRelease:
    case MsgType::kReleaseAllReads:
    case MsgType::kReleaseAllWrites:
    case MsgType::kEarlyReadRelease:
      HandleRelease(msg);
      return Message{};
    case MsgType::kMigrateRange:
      // Fire-and-forget under the multitasked deployment: the requesting
      // core is also the owning service core.
      BeginMigration(msg.w0, msg.w1, static_cast<uint32_t>(msg.w2));
      return Message{};
    default:
      TM2C_FATAL("unexpected message type in DtmService::Process");
  }
}

TxInfo DtmService::DecodeRequester(const Message& msg) const {
  TxInfo info;
  info.core = msg.src;
  info.epoch = msg.w1;
  info.metric = cm_->MetricFromWire(msg.w2, env_.LocalNow());
  return info;
}

void DtmService::ChargeProcessing(uint64_t items) {
  env_.Compute(config_.service_base_cycles + config_.service_per_item_cycles * items);
}

void DtmService::NotifyVictims(const std::vector<Victim>& victims) {
  for (const Victim& victim : victims) {
    if (trace_ != nullptr) {
      trace_->OnRevocation(env_.core_id(), victim.info.core, victim.info.epoch, victim.kind);
    }
    // FaultMode::kIgnoreRevocation (verification only): the locks are gone
    // — the CM's decision stands and the winner proceeds — but the victim
    // is never told: no record for the stale-epoch refusal (stale batch
    // entries will be granted), no abort-status publication, no
    // notification message.
    if (config_.fault == FaultMode::kIgnoreRevocation) {
      continue;
    }
    RemoteCoreState& state = remote_state_[victim.info.core];
    if (state.aborted_epoch == victim.info.epoch) {
      continue;  // this node already notified that transaction attempt
    }
    state.aborted_epoch = victim.info.epoch;
    state.aborted_kind = victim.kind;
    ++stats_.notifications_sent;
    // Publish the abort to the victim's shared status word (the paper's
    // "status atomically switched from pending to aborted"): the victim
    // reads it atomically with its persist, which closes the race between
    // this revocation and the victim's commit point. The message below
    // remains the prompt wake-up path.
    if (config_.abort_status_base != TmConfig::kNoAbortStatus) {
      env_.ShmemWrite(config_.abort_status_base + victim.info.core * kWordBytes,
                      victim.info.epoch);
    }
    if (victim.info.core == env_.core_id()) {
      // Multitasked deployment: the victim runs on this very core.
      TM2C_CHECK_MSG(local_abort_sink_ != nullptr,
                     "revoked a local transaction but no local abort sink is registered");
      local_abort_sink_(victim.info.epoch, victim.kind);
      continue;
    }
    Message notify;
    notify.type = MsgType::kAbortNotify;
    notify.w1 = victim.info.epoch;
    notify.w2 = static_cast<uint64_t>(victim.kind);
    env_.Send(victim.info.core, std::move(notify));
  }
}

Message DtmService::HandleAcquire(const Message& msg, bool is_write) {
  ++stats_.requests;
  ChargeProcessing(1);

  Message rsp;
  rsp.w0 = msg.w0;
  rsp.w1 = msg.w1;

  // A request from an attempt this node already revoked is refused outright;
  // the refusal races with (and is equivalent to) the in-flight abort
  // notification.
  RemoteCoreState& state = remote_state_[msg.src];
  if (state.aborted_epoch == msg.w1) {
    ++stats_.stale_requests_refused;
    rsp.type = MsgType::kLockConflict;
    rsp.w2 = static_cast<uint64_t>(state.aborted_kind);
    return rsp;
  }

  const bool committing = is_write && msg.w3 != 0;
  if (Overloaded(committing)) {
    ++stats_.overload_refused;
    rsp.type = MsgType::kLockConflict;
    rsp.w2 = static_cast<uint64_t>(ConflictKind::kOverload);
    return rsp;
  }

  NoteAcquiresForPolicy(&msg.w0, 1);

  // A stale request routed before a directory flip can still land here;
  // granting a stripe this node no longer owns would split its lock state
  // across two tables. kMigrating tells the requester to re-route.
  if (map_ != nullptr && map_->ResponsibleCore(msg.w0) != env_.core_id()) {
    ++stats_.misrouted_refused;
    rsp.type = MsgType::kLockConflict;
    rsp.w2 = static_cast<uint64_t>(ConflictKind::kMigrating);
    return rsp;
  }
  if (config_.fault != FaultMode::kGrantDuringMigration && MigratingStripe(msg.w0)) {
    ++stats_.migrating_refused;
    rsp.type = MsgType::kLockConflict;
    rsp.w2 = static_cast<uint64_t>(ConflictKind::kMigrating);
    return rsp;
  }

  const TxInfo requester = DecodeRequester(msg);
  const AcquireResult result =
      is_write ? table_.WriteLock(requester, msg.w0, *cm_, /*committing=*/msg.w3 != 0)
               : table_.ReadLock(requester, msg.w0, *cm_);
  NotifyVictims(result.victims);
  if (result.refused != ConflictKind::kNone) {
    rsp.type = MsgType::kLockConflict;
    rsp.w2 = static_cast<uint64_t>(result.refused);
  } else {
    rsp.type = MsgType::kLockGranted;
    if (trace_ != nullptr) {
      TraceGrants(msg.src, &msg.w0, 1);
    }
  }
  return rsp;
}

Message DtmService::HandleBatchAcquire(const Message& msg) {
  ++stats_.requests;
  ++stats_.batch_requests;
  stats_.batch_entries += msg.extra.size();
  ChargeProcessing(msg.extra.size());
  TM2C_CHECK_MSG(msg.extra.size() <= kMaxBatchEntries, "oversized batch request");

  // The request id in the bits above the flags is opaque to the service:
  // it is echoed in the reply so a pipelining requester can match
  // interleaved replies to their requests.
  const uint64_t request_id = msg.w0 >> kBatchReqIdShift;

  Message rsp;
  rsp.type = MsgType::kBatchReply;
  rsp.w1 = msg.w1;
  rsp.w3 = request_id << kBatchReqIdShift;

  // A batch from an attempt this node already revoked is refused whole (no
  // entry granted), exactly like the scalar path.
  RemoteCoreState& state = remote_state_[msg.src];
  if (state.aborted_epoch == msg.w1) {
    ++stats_.stale_requests_refused;
    rsp.w2 = static_cast<uint64_t>(state.aborted_kind);
    return rsp;
  }

  const bool committing = (msg.w0 & kBatchReqIdMask & kBatchFlagCommit) != 0;
  if (Overloaded(committing)) {
    ++stats_.overload_refused;
    rsp.w2 = static_cast<uint64_t>(ConflictKind::kOverload);
    return rsp;  // refused whole: no entry granted
  }

  // Decode the requester's CM metric once for the whole batch — with the
  // scalar protocol this (and the message round trip around it) happened
  // once per address.
  const TxInfo requester = DecodeRequester(msg);
  const uint32_t n = static_cast<uint32_t>(msg.extra.size());

  NoteAcquiresForPolicy(msg.extra.data(), n);

  // Misrouted entries terminate the grant prefix: granting a stripe this
  // node does not own would split its lock state across two tables. Only
  // the correctly-routed leading run is attempted. Entries inside an open
  // drain window cut the prefix the same way. Both cuts are retryable and
  // carry kMigrating: a misroute here means the requester routed before a
  // directory flip and will re-route on retry.
  uint32_t routed = n;
  ConflictKind route_refusal = ConflictKind::kNone;
  if (map_ != nullptr) {
    for (uint32_t i = 0; i < n; ++i) {
      if (map_->ResponsibleCore(msg.extra[i]) != env_.core_id()) {
        routed = i;
        route_refusal = ConflictKind::kMigrating;
        ++stats_.misrouted_refused;
        break;
      }
      if (config_.fault != FaultMode::kGrantDuringMigration && MigratingStripe(msg.extra[i])) {
        routed = i;
        route_refusal = ConflictKind::kMigrating;
        ++stats_.migrating_refused;
        break;
      }
    }
  }

  const BatchAcquireResult result = table_.TryAcquireMany(
      requester, msg.extra.data(), routed, msg.w3, *cm_, committing);
  NotifyVictims(result.victims);
  rsp.w0 = result.granted_bitmap;
  rsp.w3 |= result.granted_count;  // fits below kBatchReqIdShift (n <= 64)
  if (trace_ != nullptr && result.granted_count > 0) {
    TraceGrants(msg.src, msg.extra.data(), result.granted_count);
  }
  if (result.granted_count < n) {
    // CM refusals carry their kind; a prefix cut by routing or an open
    // drain window carries kMigrating.
    rsp.w2 = static_cast<uint64_t>(
        result.refused != ConflictKind::kNone ? result.refused : route_refusal);
  }
  return rsp;
}

uint32_t DtmService::AcquireSpanDirect(uint64_t epoch, uint64_t metric_wire,
                                       const uint64_t* addrs, uint32_t n, bool is_write,
                                       bool committing, ConflictKind* refused) {
  ++stats_.requests;
  ++stats_.local_direct_requests;
  stats_.local_direct_entries += n;
  ChargeProcessing(n);
  *refused = ConflictKind::kNone;

  // Whole-span stale-epoch refusal: a revocation of this very attempt may
  // have been decided by an earlier request this core served (multitasked
  // deployment), so the check is as necessary here as on the wire path.
  RemoteCoreState& state = remote_state_[env_.core_id()];
  if (state.aborted_epoch == epoch) {
    ++stats_.stale_requests_refused;
    *refused = state.aborted_kind;
    return 0;
  }

  NoteAcquiresForPolicy(addrs, n);

  // An open drain window cuts the span exactly like the wire path: grants
  // stop at the first draining stripe (skipped under the planted fault).
  // No admission control here — the fast path never queues, so there is no
  // inbox backlog for it to shed.
  uint32_t usable = n;
  if (config_.fault != FaultMode::kGrantDuringMigration && !migrating_out_.empty()) {
    for (uint32_t i = 0; i < n; ++i) {
      if (MigratingStripe(addrs[i])) {
        usable = i;
        ++stats_.migrating_refused;
        break;
      }
    }
  }

  TxInfo requester;
  requester.core = env_.core_id();
  requester.epoch = epoch;
  requester.metric = cm_->MetricFromWire(metric_wire, env_.LocalNow());
  const SpanAcquireResult result = table_.TryAcquireSpan(requester, addrs, usable, is_write, *cm_,
                                                         committing);
  NotifyVictims(result.victims);
  if (trace_ != nullptr && result.granted_count > 0) {
    TraceGrants(env_.core_id(), addrs, result.granted_count);
  }
  *refused = result.refused;
  if (usable < n && result.granted_count == usable && result.refused == ConflictKind::kNone) {
    *refused = ConflictKind::kMigrating;
  }
  return result.granted_count;
}

void DtmService::HandleCommitLog(const Message& msg) {
  TM2C_CHECK_MSG(durability_ != nullptr, "kCommitLog reached a service without durability");
  TM2C_CHECK_MSG(msg.extra.size() >= 2 && msg.extra.size() % 2 == 0,
                 "malformed kCommitLog payload");
  ChargeProcessing(msg.extra.size() / 2);

  if (!recovered_commits_.empty()) {
    const auto it = recovered_commits_.find({msg.src, msg.w1});
    if (it != recovered_commits_.end()) {
      // Retransmitted after a restart: the record already survived in the
      // recovered log prefix, so re-appending would duplicate it. Ack with
      // its original index — the surviving prefix is durable by definition.
      SendCommitLogAck(msg.src, msg.w1, it->second);
      recovered_commits_.erase(it);
      return;
    }
  }

  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  pairs.reserve(msg.extra.size() / 2);
  for (size_t i = 0; i < msg.extra.size(); i += 2) {
    pairs.emplace_back(msg.extra[i], msg.extra[i + 1]);
  }
  const bool checkpoint_due = durability_->LogCommit(msg.src, msg.w1, pairs);
  // Counted at the append, not at message receipt: the horizon can freeze
  // this fiber inside ChargeProcessing above, and a record counted but
  // never appended would break the exact accounting the durability
  // ablation asserts (commit_records == appended records, always).
  ++stats_.commit_records;
  const uint64_t record_index = durability_->wal().appended_records() - 1;
  // Append cost: the record's framed payload, word by word.
  env_.Compute(config_.log_append_cycles_per_word * (3 + msg.extra.size()));

  if (config_.fault == FaultMode::kAckBeforeLogFlush) {
    // Planted fault (verification only): acknowledge against the volatile
    // log tail — the commit completes before its record is durable.
    SendCommitLogAck(msg.src, msg.w1, record_index);
  } else {
    pending_acks_.push_back(PendingAck{msg.src, msg.w1, record_index});
  }

  if (checkpoint_due || durability_->unflushed_records() >= config_.group_commit_txs) {
    FlushCommitLog();
    if (checkpoint_due) {
      // Flush-then-checkpoint: a checkpoint never covers unflushed records,
      // so the durable watermark stays monotone through it.
      durability_->TakeCheckpoint();
    }
  }
}

void DtmService::SendCommitLogAck(uint32_t core, uint64_t epoch, uint64_t record_index) {
  if (trace_ != nullptr) {
    trace_->OnCommitLogAck(durability_->partition(), core, epoch, record_index);
  }
  Message ack;
  ack.type = MsgType::kCommitLogAck;
  ack.w1 = epoch;
  env_.Send(core, std::move(ack));
}

void DtmService::FlushCommitLog() {
  if (durability_ == nullptr) {
    return;
  }
  if (durability_->Flush() > 0) {
    ++stats_.log_flushes;
    env_.Compute(durability_->mode() == DurabilityMode::kFsync
                     ? config_.log_flush_fsync_cycles
                     : config_.log_flush_buffered_cycles);
  }
  for (const PendingAck& ack : pending_acks_) {
    SendCommitLogAck(ack.core, ack.epoch, ack.record_index);
  }
  pending_acks_.clear();
}

void DtmService::HandleRelease(const Message& msg) {
  ++stats_.releases;
  switch (msg.type) {
    case MsgType::kReadRelease:
    case MsgType::kEarlyReadRelease:
      ChargeProcessing(1);
      table_.ReleaseRead(msg.src, msg.w0);
      break;
    case MsgType::kWriteRelease:
      ChargeProcessing(1);
      table_.ReleaseWrite(msg.src, msg.w0);
      break;
    case MsgType::kReleaseAllReads:
      ChargeProcessing(msg.extra.size());
      for (uint64_t addr : msg.extra) {
        table_.ReleaseRead(msg.src, addr);
      }
      break;
    case MsgType::kReleaseAllWrites:
      ChargeProcessing(msg.extra.size());
      for (uint64_t addr : msg.extra) {
        table_.ReleaseWrite(msg.src, addr);
      }
      break;
    default:
      TM2C_FATAL("not a release message");
  }
  // A release may have emptied a draining range; the flip happens at the
  // instant the last holder lets go.
  MaybeCompleteMigrations();
}

void DtmService::QuiesceFlush() {
  if (durability_ == nullptr) {
    return;
  }
  if (durability_->Flush() > 0) {
    ++stats_.log_flushes;
  }
  // Deferred acks are dropped, not sent: the committers are frozen past
  // the horizon, and a post-run ack would fabricate an event the crash
  // oracle would then have to explain.
  pending_acks_.clear();
}

bool DtmService::Overloaded(bool committing) const {
  return !committing && config_.overload_high_water > 0 &&
         env_.InboxDepth() > config_.overload_high_water;
}

bool DtmService::MigratingStripe(uint64_t stripe) const {
  if (migrating_out_.empty()) {
    return false;
  }
  auto it = migrating_out_.upper_bound(stripe);
  if (it == migrating_out_.begin()) {
    return false;
  }
  --it;
  return stripe - it->first < it->second.bytes;
}

void DtmService::TraceGrants(uint32_t requester_core, const uint64_t* addrs, uint32_t n) {
  for (uint32_t i = 0; i < n; ++i) {
    trace_->OnLockGrant(env_.core_id(), requester_core, addrs[i]);
  }
}

void DtmService::BeginMigration(uint64_t base, uint64_t bytes, uint32_t target_partition) {
  TM2C_CHECK_MSG(map_ != nullptr, "migration requires an AddressMap");
  uint64_t rbase = 0;
  uint64_t rbytes = 0;
  uint32_t owner = 0;
  TM2C_CHECK_MSG(map_->FindOwnedRange(base, &rbase, &rbytes, &owner) && rbase == base &&
                     rbytes == bytes,
                 "kMigrateRange must name an exact registered owned range");
  const DeploymentPlan& plan = env_.plan();
  if (plan.ServiceCore(owner) != env_.core_id()) {
    return;  // stale request: the range already lives elsewhere
  }
  if (target_partition == owner || target_partition >= plan.num_service()) {
    return;  // nothing to move (or a nonsense target)
  }
  if (migrating_out_.find(base) != migrating_out_.end()) {
    return;  // a drain of this range is already open
  }
  ++stats_.migrations_started;
  if (trace_ != nullptr) {
    trace_->OnMigrationBegin(env_.core_id(), plan.ServiceCore(target_partition), base, bytes);
  }
  migrating_out_.emplace(base, MigratingRange{bytes, target_partition});
  if (config_.fault == FaultMode::kGrantDuringMigration) {
    // Planted fault (verification only): the drain window opens but the
    // owner neither revokes nor refuses — grants keep flowing, the range
    // never empties, and the window stays open to the horizon. Exactly the
    // execution CheckMigrationHistory must flag.
    return;
  }
  // Drain: revoke every revocable holder in the range through the normal
  // CM notification path. Commit-phase writers are left to finish — their
  // releases close the window through MaybeCompleteMigrations.
  uint64_t remaining = 0;
  const std::vector<Victim> victims = table_.DrainRange(base, bytes, &remaining);
  ChargeProcessing(victims.size() + 1);
  NotifyVictims(victims);
  MaybeCompleteMigrations();
}

void DtmService::MaybeCompleteMigrations() {
  if (migrating_out_.empty() || config_.fault == FaultMode::kGrantDuringMigration) {
    return;
  }
  for (auto it = migrating_out_.begin(); it != migrating_out_.end();) {
    if (table_.EntriesInRange(it->first, it->second.bytes) != 0) {
      ++it;
      continue;
    }
    const uint64_t base = it->first;
    const uint64_t bytes = it->second.bytes;
    const uint32_t target = it->second.target_partition;
    it = migrating_out_.erase(it);
    // The epoch bump: requests routed against the old directory version
    // are refused whole (kMigrating) by the ownership check, so no stale
    // batch can split the range's lock state across the two tables.
    const uint64_t version = map_->MoveOwnedRange(base, bytes, target);
    ++stats_.migrations_completed;
    const uint32_t to_core = env_.plan().ServiceCore(target);
    if (trace_ != nullptr) {
      trace_->OnMigrationComplete(env_.core_id(), to_core, base, bytes, version);
    }
    // Broadcast the flip so peers drop stale routing promptly instead of
    // discovering it through kMigrating refusals. The directory itself is
    // shared, so the notification carries only the version for ordering.
    for (uint32_t core = 0; core < env_.plan().num_cores(); ++core) {
      if (core == env_.core_id()) {
        continue;
      }
      Message upd;
      upd.type = MsgType::kOwnershipUpdate;
      upd.w0 = base;
      upd.w1 = bytes;
      upd.w2 = target;
      upd.w3 = version;
      env_.Send(core, std::move(upd));
    }
  }
}

void DtmService::NoteAcquiresForPolicy(const uint64_t* addrs, uint32_t n) {
  if (config_.migrate_check_every == 0 || map_ == nullptr) {
    return;
  }
  const uint32_t self = env_.plan().PartitionOf(env_.core_id());
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t base = 0;
    uint32_t partition = 0;
    if (map_->FindOwnedRange(addrs[i], &base, nullptr, &partition) && partition == self) {
      ++range_hits_[base];
    }
  }
  if (++policy_countdown_ < config_.migrate_check_every) {
    return;
  }
  policy_countdown_ = 0;
  // Hottest still-owned range above the threshold moves to the next
  // partition (round-robin: the policy's job is shedding load off this
  // core, not global placement). Ties break towards the lowest base so the
  // decision is deterministic.
  uint64_t hot_base = 0;
  uint64_t hot_bytes = 0;
  uint64_t hot_hits = 0;
  for (const auto& [base, hits] : range_hits_) {
    if (hits < hot_hits || (hits == hot_hits && hot_hits > 0 && base > hot_base)) {
      continue;
    }
    if (migrating_out_.find(base) != migrating_out_.end()) {
      continue;
    }
    uint64_t bytes = 0;
    uint32_t partition = 0;
    if (map_->FindOwnedRange(base, nullptr, &bytes, &partition) && partition == self) {
      hot_base = base;
      hot_bytes = bytes;
      hot_hits = hits;
    }
  }
  range_hits_.clear();
  if (config_.migrate_hot_threshold > 0 && hot_hits >= config_.migrate_hot_threshold &&
      hot_bytes > 0) {
    BeginMigration(hot_base, hot_bytes,
                   (self + 1) % env_.plan().num_service());
  }
}

}  // namespace tm2c

// Address-to-partition mapping.
//
// A memory location is mapped to its responsible DS-Lock node by hashing
// (Section 3.2). We hash the stripe index with a Fibonacci multiplier so
// that contiguous structures spread across partitions.
#ifndef TM2C_SRC_TM_ADDRESS_MAP_H_
#define TM2C_SRC_TM_ADDRESS_MAP_H_

#include <cstdint>

#include "src/common/check.h"
#include "src/runtime/deployment.h"

namespace tm2c {

class AddressMap {
 public:
  AddressMap(const DeploymentPlan& plan, uint64_t stripe_bytes)
      : plan_(&plan), stripe_bytes_(stripe_bytes) {
    TM2C_CHECK(stripe_bytes >= 1 && (stripe_bytes & (stripe_bytes - 1)) == 0);
  }

  // Canonical lock unit for an address: the stripe base address.
  uint64_t StripeOf(uint64_t addr) const { return addr & ~(stripe_bytes_ - 1); }

  // Partition index responsible for the stripe.
  uint32_t PartitionOf(uint64_t addr) const {
    const uint64_t stripe = addr / stripe_bytes_;
    const uint64_t h = stripe * 0x9e3779b97f4a7c15ull;
    return static_cast<uint32_t>((h >> 32) % plan_->num_service());
  }

  // Core id of the DTM service node responsible for the address.
  uint32_t ResponsibleCore(uint64_t addr) const {
    return plan_->ServiceCore(PartitionOf(addr));
  }

  uint64_t stripe_bytes() const { return stripe_bytes_; }

 private:
  const DeploymentPlan* plan_;
  uint64_t stripe_bytes_;
};

}  // namespace tm2c

#endif  // TM2C_SRC_TM_ADDRESS_MAP_H_

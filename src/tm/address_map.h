// Address-to-partition mapping.
//
// A memory location is mapped to its responsible DS-Lock node in one of two
// ways:
//
//  - By hashing (Section 3.2), the default: the stripe index is hashed with
//    a Fibonacci multiplier so that contiguous structures spread across
//    partitions. Good for load balance, oblivious to data placement.
//
//  - By explicit ownership: AddOwnedRange pins an address range to one
//    partition, overriding the hash for every stripe inside it. This is the
//    share-little layout (KVell-style): an application that partitions its
//    data can colocate each partition's memory with one DTM service core,
//    so every lock acquisition for that data goes to its owner and the
//    request stream stays partition-local (see src/apps/kvstore.h).
//
// AddressMap is copied freely (TxRuntime holds one by value, DtmService
// points at TmSystem's); the ownership directory is shared state behind a
// shared_ptr, so ranges registered through any copy are visible to all of
// them. Registration is setup-time only: call AddOwnedRange before the
// system runs — the directory is read without synchronization afterwards.
#ifndef TM2C_SRC_TM_ADDRESS_MAP_H_
#define TM2C_SRC_TM_ADDRESS_MAP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/runtime/deployment.h"

namespace tm2c {

class AddressMap {
 public:
  AddressMap(const DeploymentPlan& plan, uint64_t stripe_bytes)
      : plan_(&plan),
        stripe_bytes_(stripe_bytes),
        directory_(std::make_shared<Directory>()) {
    TM2C_CHECK(stripe_bytes >= 1 && (stripe_bytes & (stripe_bytes - 1)) == 0);
  }

  // Canonical lock unit for an address: the stripe base address.
  uint64_t StripeOf(uint64_t addr) const { return addr & ~(stripe_bytes_ - 1); }

  // Pins [base, base + bytes) to `partition`. The range must be stripe-
  // aligned (a stripe cannot straddle partitions) and must not overlap a
  // previously registered range. Setup-time only: not thread-safe against
  // concurrent lookups, so register every range before the system runs.
  void AddOwnedRange(uint64_t base, uint64_t bytes, uint32_t partition) {
    TM2C_CHECK_MSG(base % stripe_bytes_ == 0 && bytes % stripe_bytes_ == 0,
                   "owned range must be stripe-aligned");
    TM2C_CHECK(bytes > 0);
    TM2C_CHECK(partition < plan_->num_service());
    auto& ranges = directory_->ranges;
    // The new range must end before the next range starts and begin after
    // the previous one ends.
    auto next = ranges.lower_bound(base);
    TM2C_CHECK_MSG(next == ranges.end() || base + bytes <= next->first,
                   "owned ranges must not overlap");
    if (next != ranges.begin()) {
      auto prev = std::prev(next);
      TM2C_CHECK_MSG(prev->first + prev->second.bytes <= base,
                     "owned ranges must not overlap");
    }
    ranges.emplace(base, OwnedRange{bytes, partition});
  }

  // Partition index responsible for the stripe: the owning partition if the
  // address falls in a registered range, the stripe hash otherwise.
  uint32_t PartitionOf(uint64_t addr) const {
    const auto& ranges = directory_->ranges;
    if (!ranges.empty()) {
      auto it = ranges.upper_bound(addr);
      if (it != ranges.begin()) {
        --it;
        if (addr - it->first < it->second.bytes) {
          return it->second.partition;
        }
      }
    }
    const uint64_t stripe = addr / stripe_bytes_;
    const uint64_t h = stripe * 0x9e3779b97f4a7c15ull;
    return static_cast<uint32_t>((h >> 32) % plan_->num_service());
  }

  // Core id of the DTM service node responsible for the address.
  uint32_t ResponsibleCore(uint64_t addr) const {
    return plan_->ServiceCore(PartitionOf(addr));
  }

  uint64_t stripe_bytes() const { return stripe_bytes_; }
  size_t num_owned_ranges() const { return directory_->ranges.size(); }

  // Enumerates the registered owned ranges in address order (durability
  // uses this to capture each partition's initial image for checkpoint 0).
  void ForEachOwnedRange(
      const std::function<void(uint64_t base, uint64_t bytes, uint32_t partition)>& fn) const {
    for (const auto& [base, range] : directory_->ranges) {
      fn(base, range.bytes, range.partition);
    }
  }

  // Human-readable dump of the routing configuration: stripe size, the
  // hash fallback, and every owned range with its pinned partition and
  // owning core. For misrouting post-mortems — a batch refusal with
  // ConflictKind::kNone means runtime and service disagreed on exactly the
  // information printed here.
  std::string Describe() const {
    std::ostringstream out;
    out << "AddressMap: stripe_bytes=" << stripe_bytes_ << ", partitions="
        << plan_->num_service() << ", owned_ranges=" << directory_->ranges.size()
        << " (hash fallback elsewhere)\n";
    for (const auto& [base, range] : directory_->ranges) {
      out << "  [0x" << std::hex << base << ", 0x" << base + range.bytes << std::dec
          << ") -> partition " << range.partition << " (core "
          << plan_->ServiceCore(range.partition) << ")\n";
    }
    return out.str();
  }

 private:
  struct OwnedRange {
    uint64_t bytes = 0;
    uint32_t partition = 0;
  };
  // base address -> range; shared by every copy of the map (see header).
  struct Directory {
    std::map<uint64_t, OwnedRange> ranges;
  };

  const DeploymentPlan* plan_;
  uint64_t stripe_bytes_;
  std::shared_ptr<Directory> directory_;
};

}  // namespace tm2c

#endif  // TM2C_SRC_TM_ADDRESS_MAP_H_

// Address-to-partition mapping.
//
// A memory location is mapped to its responsible DS-Lock node in one of two
// ways:
//
//  - By hashing (Section 3.2), the default: the stripe index is hashed with
//    a Fibonacci multiplier so that contiguous structures spread across
//    partitions. Good for load balance, oblivious to data placement.
//
//  - By explicit ownership: AddOwnedRange pins an address range to one
//    partition, overriding the hash for every stripe inside it. This is the
//    share-little layout (KVell-style): an application that partitions its
//    data can colocate each partition's memory with one DTM service core,
//    so every lock acquisition for that data goes to its owner and the
//    request stream stays partition-local (see src/apps/kvstore.h).
//
// AddressMap is copied freely (TxRuntime holds one by value, DtmService
// points at TmSystem's); the ownership directory is shared state behind a
// shared_ptr, so ranges registered through any copy are visible to all of
// them. Range registration is setup-time only (call AddOwnedRange before
// the system runs), but the *owner* of a registered range may move at
// runtime: MoveOwnedRange flips the range's partition in place — the map
// structure itself never changes after setup, so concurrent lookups only
// race on the atomic partition field and the directory version counter.
//
// Two partitions per range:
//  - `partition` is the current lock owner, flipped by migration.
//  - `home_partition` is frozen at registration and names the durability
//    partition: the WAL/checkpoint image that covers the range's slab.
//    Commit records keep routing to the home even after the lock traffic
//    migrated away, so recovery never has to merge logs across partitions.
#ifndef TM2C_SRC_TM_ADDRESS_MAP_H_
#define TM2C_SRC_TM_ADDRESS_MAP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/runtime/deployment.h"

namespace tm2c {

class AddressMap {
 public:
  AddressMap(const DeploymentPlan& plan, uint64_t stripe_bytes)
      : plan_(&plan),
        stripe_bytes_(stripe_bytes),
        directory_(std::make_shared<Directory>()) {
    TM2C_CHECK(stripe_bytes >= 1 && (stripe_bytes & (stripe_bytes - 1)) == 0);
  }

  // Canonical lock unit for an address: the stripe base address.
  uint64_t StripeOf(uint64_t addr) const { return addr & ~(stripe_bytes_ - 1); }

  // Pins [base, base + bytes) to `partition`. The range must be stripe-
  // aligned (a stripe cannot straddle partitions) and must not overlap a
  // previously registered range. Setup-time only: not thread-safe against
  // concurrent lookups, so register every range before the system runs.
  void AddOwnedRange(uint64_t base, uint64_t bytes, uint32_t partition) {
    TM2C_CHECK_MSG(base % stripe_bytes_ == 0 && bytes % stripe_bytes_ == 0,
                   "owned range must be stripe-aligned");
    TM2C_CHECK(bytes > 0);
    TM2C_CHECK(partition < plan_->num_service());
    auto& ranges = directory_->ranges;
    // The new range must end before the next range starts and begin after
    // the previous one ends.
    auto next = ranges.lower_bound(base);
    TM2C_CHECK_MSG(next == ranges.end() || base + bytes <= next->first,
                   "owned ranges must not overlap");
    if (next != ranges.begin()) {
      auto prev = std::prev(next);
      TM2C_CHECK_MSG(prev->first + prev->second.bytes <= base,
                     "owned ranges must not overlap");
    }
    ranges.try_emplace(base, bytes, partition);
  }

  // Flips the owner of an exact registered range. Runtime-safe: the map
  // structure is untouched, only the range's atomic partition field and the
  // directory version move. Returns the directory version after the flip.
  // The caller (the migration protocol in DtmService) is responsible for
  // having drained the range first. Const: the directory is shared mutable
  // state (see header comment), and the flipping service only holds a
  // const view of the map.
  uint64_t MoveOwnedRange(uint64_t base, uint64_t bytes, uint32_t new_partition) const {
    TM2C_CHECK(new_partition < plan_->num_service());
    auto it = directory_->ranges.find(base);
    TM2C_CHECK_MSG(it != directory_->ranges.end() && it->second.bytes == bytes,
                   "MoveOwnedRange must name an exact registered range");
    it->second.partition.store(new_partition, std::memory_order_relaxed);
    return directory_->version.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  // Looks up the registered range containing `addr`. Returns false when the
  // address is hash-routed. Out-params are optional.
  bool FindOwnedRange(uint64_t addr, uint64_t* base, uint64_t* bytes,
                      uint32_t* partition) const {
    const auto& ranges = directory_->ranges;
    if (ranges.empty()) {
      return false;
    }
    auto it = ranges.upper_bound(addr);
    if (it == ranges.begin()) {
      return false;
    }
    --it;
    if (addr - it->first >= it->second.bytes) {
      return false;
    }
    if (base != nullptr) {
      *base = it->first;
    }
    if (bytes != nullptr) {
      *bytes = it->second.bytes;
    }
    if (partition != nullptr) {
      *partition = it->second.partition.load(std::memory_order_relaxed);
    }
    return true;
  }

  // Partition index responsible for the stripe: the owning partition if the
  // address falls in a registered range, the stripe hash otherwise.
  uint32_t PartitionOf(uint64_t addr) const {
    uint32_t partition = 0;
    if (FindOwnedRange(addr, nullptr, nullptr, &partition)) {
      return partition;
    }
    return HashPartitionOf(addr);
  }

  // Core id of the DTM service node responsible for the address.
  uint32_t ResponsibleCore(uint64_t addr) const {
    return plan_->ServiceCore(PartitionOf(addr));
  }

  // Durability partition for the address: the frozen home of its owned
  // range (migration never moves it), or the hash partition for unowned
  // addresses (which cannot migrate either).
  uint32_t DurableHomeOf(uint64_t addr) const {
    const auto& ranges = directory_->ranges;
    if (!ranges.empty()) {
      auto it = ranges.upper_bound(addr);
      if (it != ranges.begin()) {
        --it;
        if (addr - it->first < it->second.bytes) {
          return it->second.home_partition;
        }
      }
    }
    return HashPartitionOf(addr);
  }

  // Core id of the service hosting the address's write-ahead log.
  uint32_t DurableHomeCore(uint64_t addr) const {
    return plan_->ServiceCore(DurableHomeOf(addr));
  }

  // Monotonic directory version: bumped by every MoveOwnedRange. Lets
  // observers (the kOwnershipUpdate broadcast, tests) order flips.
  uint64_t version() const { return directory_->version.load(std::memory_order_acquire); }

  uint64_t stripe_bytes() const { return stripe_bytes_; }
  size_t num_owned_ranges() const { return directory_->ranges.size(); }

  // Enumerates the registered owned ranges in address order (durability
  // uses this to capture each partition's initial image for checkpoint 0).
  // `partition` is the current lock owner; durability callers that need the
  // frozen home use ForEachDurableRange below.
  void ForEachOwnedRange(
      const std::function<void(uint64_t base, uint64_t bytes, uint32_t partition)>& fn) const {
    for (const auto& [base, range] : directory_->ranges) {
      fn(base, range.bytes, range.partition.load(std::memory_order_relaxed));
    }
  }

  // Like ForEachOwnedRange but reports each range's durable home partition
  // (checkpoint capture must image a slab into the WAL that replays it).
  void ForEachDurableRange(
      const std::function<void(uint64_t base, uint64_t bytes, uint32_t partition)>& fn) const {
    for (const auto& [base, range] : directory_->ranges) {
      fn(base, range.bytes, range.home_partition);
    }
  }

  // Human-readable dump of the routing configuration: stripe size, the
  // hash fallback, and every owned range with its pinned partition and
  // owning core. For misrouting post-mortems — a batch refusal with
  // ConflictKind::kNone means runtime and service disagreed on exactly the
  // information printed here.
  std::string Describe() const {
    std::ostringstream out;
    out << "AddressMap: stripe_bytes=" << stripe_bytes_ << ", partitions="
        << plan_->num_service() << ", owned_ranges=" << directory_->ranges.size()
        << ", version=" << version() << " (hash fallback elsewhere)\n";
    for (const auto& [base, range] : directory_->ranges) {
      const uint32_t partition = range.partition.load(std::memory_order_relaxed);
      out << "  [0x" << std::hex << base << ", 0x" << base + range.bytes << std::dec
          << ") -> partition " << partition << " (core "
          << plan_->ServiceCore(partition) << ", durable home " << range.home_partition
          << ")\n";
    }
    return out.str();
  }

 private:
  struct OwnedRange {
    OwnedRange(uint64_t bytes_in, uint32_t partition_in)
        : bytes(bytes_in), partition(partition_in), home_partition(partition_in) {}
    uint64_t bytes = 0;
    // Current lock owner; migration flips it in place while readers race.
    std::atomic<uint32_t> partition{0};
    // Durability home, frozen at registration (see file comment).
    uint32_t home_partition = 0;
  };
  // base address -> range; shared by every copy of the map (see header).
  struct Directory {
    std::map<uint64_t, OwnedRange> ranges;
    std::atomic<uint64_t> version{0};
  };

  uint32_t HashPartitionOf(uint64_t addr) const {
    const uint64_t stripe = addr / stripe_bytes_;
    const uint64_t h = stripe * 0x9e3779b97f4a7c15ull;
    return static_cast<uint32_t>((h >> 32) % plan_->num_service());
  }

  const DeploymentPlan* plan_;
  uint64_t stripe_bytes_;
  std::shared_ptr<Directory> directory_;
};

}  // namespace tm2c

#endif  // TM2C_SRC_TM_ADDRESS_MAP_H_

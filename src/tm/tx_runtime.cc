#include "src/tm/tx_runtime.h"

#include <algorithm>
#include <map>

#include "src/common/check.h"
#include "src/sim/fiber.h"

namespace tm2c {

TxRuntime::TxRuntime(CoreEnv& env, const TmConfig& config, const AddressMap& map,
                     DtmService* local_service)
    : env_(env),
      config_(config),
      map_(map),
      local_service_(local_service),
      backoff_rng_(0x5bd1e995u * (env.core_id() + 1)) {
  if (local_service_ != nullptr) {
    local_service_->SetLocalAbortSink([this](uint64_t epoch, ConflictKind kind) {
      if (in_tx_ && epoch == current_epoch_) {
        pending_abort_ = true;
        pending_abort_kind_ = kind;
      }
    });
  }
}

void TxRuntime::Execute(const std::function<void(Tx&)>& body) {
  const bool committed = TryExecute(body, UINT64_MAX);
  TM2C_CHECK(committed);
}

bool TxRuntime::TryExecute(const std::function<void(Tx&)>& body, uint64_t max_attempts) {
  TM2C_CHECK_MSG(!in_tx_, "nested transactions are not supported");
  tx_start_local_ = env_.LocalNow();  // fixed for the whole lifespan (rule a)
  uint64_t attempts = 0;
  for (;;) {
    BeginAttempt();
    ++attempts;
    Tx tx(this);
    try {
      body(tx);
      // An abort was thrown through the body but the body returned anyway:
      // application code swallowed TxAbortException with a catch-all, which
      // breaks the retry protocol (locks are already released, the body's
      // view is stale). This is a programming error, not a recoverable
      // condition.
      TM2C_CHECK_MSG(!abort_thrown_,
                     "transaction body swallowed TxAbortException (catch(...) in a tx body?)");
      TxCommit();
      in_tx_ = false;
      ++stats_.commits;
      stats_.busy_time += env_.LocalNow() - attempt_start_local_;
      if (attempts > stats_.max_attempts_per_tx) {
        stats_.max_attempts_per_tx = attempts;
      }
      // CM bookkeeping: Wholly counts commits; FairCM accumulates only the
      // successful attempt's duration (the "effective" transactional time).
      ++commits_count_;
      effective_tx_time_ += env_.LocalNow() - attempt_start_local_;
      consecutive_aborts_ = 0;
      return true;
    } catch (const TxAbortException& abort) {
      abort_thrown_ = false;
      in_tx_ = false;
      ++stats_.aborts;
      ++consecutive_aborts_;
      if (attempts >= max_attempts) {
        return false;
      }
      if (abort.reason == ConflictKind::kMigrating && config_.migrate_backoff_cycles > 0) {
        // A drain window or a stale route refused us: back off past the
        // expected drain latency regardless of the CM — an instant retry
        // would only be refused again by the same window.
        env_.Compute(backoff_rng_.NextBelow(config_.migrate_backoff_cycles) + 1);
      } else if (abort.reason == ConflictKind::kOverload &&
                 config_.overload_backoff_cycles > 0) {
        // Admission control shed us: give the service's inbox time to
        // drain below the high-water mark before offering the load again.
        env_.Compute(backoff_rng_.NextBelow(config_.overload_backoff_cycles) + 1);
      } else if (config_.cm == CmKind::kBackoffRetry) {
        // Randomized exponential back-off before the retry (Section 4.2).
        const uint64_t shift = std::min<uint64_t>(consecutive_aborts_ - 1, 16);
        uint64_t bound = config_.backoff_initial_cycles << shift;
        if (bound > config_.backoff_max_cycles) {
          bound = config_.backoff_max_cycles;
        }
        env_.Compute(backoff_rng_.NextBelow(bound) + 1);
      }
    }
  }
}

void TxRuntime::BeginAttempt() {
  ServePending();
  // Every path out of an attempt (commit, abort, TryExecute giving up)
  // drains the in-flight table first; a request still outstanding here
  // would mean a reply could be matched against the wrong attempt's locks.
  TM2C_CHECK_MSG(inflight_.empty(), "in-flight acquisitions leaked across attempts");
  pending_refusal_ = ConflictKind::kNone;
  prefetch_pending_.clear();
  ++attempt_counter_;
  current_epoch_ = (static_cast<uint64_t>(env_.core_id()) << 32) | attempt_counter_;
  abort_thrown_ = false;
  pending_abort_ = false;
  pending_abort_kind_ = ConflictKind::kNone;
  write_buffer_.clear();
  write_order_.clear();
  read_locks_.clear();
  read_lock_order_.clear();
  read_cache_.clear();
  write_locks_.clear();
  validation_window_.clear();
  elastic_read_values_.clear();
  early_released_values_.clear();
  attempt_start_local_ = env_.LocalNow();
  in_tx_ = true;
  if (trace_ != nullptr) {
    trace_->OnTxBegin(env_.core_id(), current_epoch_, env_.GlobalNow());
  }
}

void TxRuntime::CheckBodyContract() const {
  const Fiber* fiber = Fiber::Current();
  TM2C_CHECK_MSG(fiber == nullptr || !fiber->unwinding(),
                 "transaction body swallowed Fiber::Unwound (catch(...) in a tx body?)");
  TM2C_CHECK_MSG(!abort_thrown_,
                 "transaction body swallowed TxAbortException (catch(...) in a tx body?)");
}

void TxRuntime::ServePending() {
  // Bounded slice: under closed-loop retries (every refusal this core
  // serves immediately triggers the sender's next request) the inbox can
  // refill as fast as it drains, and an unbounded drain would wedge a
  // mid-commit transaction into serving forever. A bounded slice lets the
  // commit proceed; missed abort notifications are covered by the
  // shared-memory status word checked at the persist instant.
  Message msg;
  int budget = 128;
  while (budget-- > 0 && env_.TryRecv(&msg)) {
    if (msg.type == MsgType::kAbortNotify) {
      if (in_tx_ && msg.w1 == current_epoch_) {
        pending_abort_ = true;
        pending_abort_kind_ = static_cast<ConflictKind>(msg.w2);
      }
      continue;  // stale notification for a finished attempt
    }
    if (msg.type == MsgType::kBarrier) {
      // A peer already reached a privatization barrier we have not entered
      // yet; remember its token for when we do.
      ++barrier_arrivals_[msg.w0];
      continue;
    }
    if (msg.type == MsgType::kOwnershipUpdate) {
      // A stripe range changed owner. The directory is shared, so the next
      // routing lookup already sees the flip; just count the notification.
      ++stats_.ownership_updates;
      continue;
    }
    if (msg.type == MsgType::kBatchReply) {
      // A pipelined prefetch reply landing while this core does local
      // work: record the grants (or the refusal) right away.
      CompleteBatch(msg);
      continue;
    }
    if (local_service_ != nullptr) {
      env_.Compute(config_.multitask_switch_cycles);  // coroutine switch
      if (local_service_->HandleMessage(msg)) {
        continue;  // multitasked deployment: served a DTM request
      }
    }
    TM2C_FATAL("unexpected message in application inbox");
  }
}

void TxRuntime::RequestMigration(uint64_t base, uint64_t bytes, uint32_t target_partition) {
  TM2C_CHECK_MSG(!in_tx_, "RequestMigration inside a transaction");
  const uint32_t owner_core = map_.ResponsibleCore(base);
  Message msg;
  msg.type = MsgType::kMigrateRange;
  msg.w0 = base;
  msg.w1 = bytes;
  msg.w2 = target_partition;
  FireAndForget(owner_core, std::move(msg));
}

void TxRuntime::PrivatizationBarrier() {
  TM2C_CHECK_MSG(!in_tx_, "PrivatizationBarrier inside a transaction");
  const DeploymentPlan& plan = env_.plan();
  ++barrier_generation_;
  const uint64_t generation = barrier_generation_;
  // Announce arrival to every other application core.
  for (uint32_t core : plan.app_cores()) {
    if (core == env_.core_id()) {
      continue;
    }
    Message msg;
    msg.type = MsgType::kBarrier;
    msg.w0 = generation;
    env_.Send(core, std::move(msg));
    ++stats_.messages_sent;
  }
  // Wait for everyone. A peer that races ahead may already send generation
  // g+1 tokens while we still collect g; those are buffered, never lost.
  const uint32_t needed = plan.num_app() - 1;
  while (barrier_arrivals_[generation] < needed) {
    Message msg = env_.Recv();
    switch (msg.type) {
      case MsgType::kBarrier:
        ++barrier_arrivals_[msg.w0];
        break;
      case MsgType::kAbortNotify:
        break;  // stale: we are not in a transaction
      case MsgType::kOwnershipUpdate:
        ++stats_.ownership_updates;  // directory is shared; nothing to apply
        break;
      default:
        if (local_service_ != nullptr) {
          env_.Compute(config_.multitask_switch_cycles);
          if (local_service_->HandleMessage(msg)) {
            break;
          }
        }
        TM2C_FATAL("unexpected message while in the privatization barrier");
    }
  }
  barrier_arrivals_.erase(generation);
}

void TxRuntime::CheckPendingAbort() {
  // Drain the inbox first: an abort notification may have been delivered
  // while this core was busy with local work (in particular, serving its
  // own partition synchronously under the multitasked deployment never
  // touches the inbox). TryRecv on an empty inbox is free.
  ServePending();
  if (pending_abort_) {
    ++stats_.notify_aborts;
    AbortSelf(pending_abort_kind_);
  }
  if (pending_refusal_ != ConflictKind::kNone) {
    // A pipelined (prefetch) batch was refused while this core was busy
    // elsewhere; the refusal aborts at the next transactional operation.
    const ConflictKind kind = pending_refusal_;
    pending_refusal_ = ConflictKind::kNone;
    AbortSelf(kind);
  }
}

uint64_t TxRuntime::WireMetric() {
  switch (config_.cm) {
    case CmKind::kOffsetGreedy: {
      // Offset since transaction start, on this core's clock (step 1-2 of
      // Section 4.3).
      const SimTime now = env_.LocalNow();
      return now > tx_start_local_ ? now - tx_start_local_ : 0;
    }
    case CmKind::kWholly:
      return commits_count_;
    case CmKind::kFairCm:
      return effective_tx_time_;
    case CmKind::kNone:
    case CmKind::kBackoffRetry:
      return 0;
  }
  return 0;
}

Message TxRuntime::Rpc(uint32_t dst, Message request) {
  ++stats_.messages_sent;
  if (dst == env_.core_id()) {
    // Multitasked deployment: this core is its own responsible node.
    TM2C_CHECK_MSG(local_service_ != nullptr, "self-addressed request without a local service");
    request.src = env_.core_id();
    env_.Compute(config_.multitask_switch_cycles);  // coroutine switch
    return local_service_->HandleLocal(request);
  }
  env_.Send(dst, std::move(request));
  for (;;) {
    Message msg = env_.Recv();
    switch (msg.type) {
      case MsgType::kLockGranted:
      case MsgType::kLockConflict:
        return msg;
      case MsgType::kBatchReply:
        // A still-outstanding pipelined batch (prefetch) resolving while a
        // scalar request waits: record it and keep waiting for the scalar
        // response.
        CompleteBatch(msg);
        continue;
      case MsgType::kAbortNotify:
        if (in_tx_ && msg.w1 == current_epoch_) {
          pending_abort_ = true;
          pending_abort_kind_ = static_cast<ConflictKind>(msg.w2);
        }
        continue;
      case MsgType::kBarrier:
        ++barrier_arrivals_[msg.w0];  // peer reached a privatization barrier
        continue;
      case MsgType::kOwnershipUpdate:
        ++stats_.ownership_updates;  // directory is shared; nothing to apply
        continue;
      default:
        if (local_service_ != nullptr) {
          env_.Compute(config_.multitask_switch_cycles);  // coroutine switch
          if (local_service_->HandleMessage(msg)) {
            continue;  // served a DTM request while waiting (Figure 2)
          }
        }
        TM2C_FATAL("unexpected message while awaiting a DTM response");
    }
  }
}

Message TxRuntime::AcquireRpc(uint32_t dst, Message request, uint64_t stripes) {
  const SimTime start = env_.LocalNow();
  Message rsp = Rpc(dst, std::move(request));
  stats_.acquire_time += env_.LocalNow() - start;
  stats_.lock_acquires += stripes;
  stats_.remote_acquires += stripes;
  return rsp;
}

void TxRuntime::IssueBatch(uint32_t node, std::vector<uint64_t> stripes, bool is_write,
                           bool committing) {
  const SimTime issue_start = env_.LocalNow();
  const uint64_t request_id = next_request_id_++;
  const auto len = static_cast<uint32_t>(stripes.size());
  Message req;
  req.type = MsgType::kBatchAcquire;
  req.w0 = (committing ? kBatchFlagCommit : 0) | (request_id << kBatchReqIdShift);
  req.w1 = current_epoch_;
  req.w2 = WireMetric();
  req.w3 = is_write ? PrefixBitmap(len) : 0;
  req.extra = stripes;  // the in-flight record keeps its own copy
  ++stats_.batch_messages;
  ++stats_.messages_sent;
  // Depth at issue counts this request itself; depth 1 (lockstep) lands
  // every batch in bucket 0.
  const size_t depth = inflight_.size() + 1;
  ++stats_.inflight_depth_hist[std::min<size_t>(depth, stats_.inflight_depth_hist.size()) - 1];
  if (trace_ != nullptr) {
    trace_->OnAcquireIssue(env_.core_id(), request_id, node, len, is_write);
  }
  InFlightAcquire fl;
  fl.node = node;
  fl.stripes = std::move(stripes);
  fl.is_write = is_write;
  fl.issue_start = issue_start;
  if (node == env_.core_id()) {
    // Multitasked deployment: this core is its own responsible node. The
    // request resolves synchronously at the issue position — exactly the
    // lockstep ordering — so it spends no time in the in-flight table.
    TM2C_CHECK_MSG(local_service_ != nullptr, "self-addressed request without a local service");
    req.src = env_.core_id();
    env_.Compute(config_.multitask_switch_cycles);  // coroutine switch
    Message rsp = local_service_->HandleLocal(std::move(req));
    inflight_.emplace(request_id, std::move(fl));
    CompleteBatch(rsp);
    return;
  }
  env_.Send(node, std::move(req));
  inflight_.emplace(request_id, std::move(fl));
}

void TxRuntime::CompleteBatch(const Message& rsp) {
  const uint64_t request_id = rsp.w3 >> kBatchReqIdShift;
  auto it = inflight_.find(request_id);
  TM2C_CHECK_MSG(it != inflight_.end(), "batch reply with no matching in-flight request");
  InFlightAcquire fl = std::move(it->second);
  inflight_.erase(it);
  const size_t len = fl.stripes.size();
  const auto granted = static_cast<size_t>(rsp.w3 & kBatchReqIdMask);
  TM2C_DCHECK(granted <= len);
  for (size_t i = 0; i < granted; ++i) {
    const uint64_t stripe = fl.stripes[i];
    if (fl.is_write) {
      write_locks_.insert(stripe);
    } else if (read_locks_.insert(stripe).second) {
      read_lock_order_.push_back(stripe);
    }
  }
  // Per-request acquire latency: overlapped requests each charge their full
  // issue-to-completion interval (the per-request mean is the pipelining
  // metric; wall time is tracked by busy_time).
  stats_.acquire_time += env_.LocalNow() - fl.issue_start;
  stats_.lock_acquires += len;
  stats_.remote_acquires += len;
  for (uint64_t stripe : fl.stripes) {
    auto p = prefetch_pending_.find(stripe);
    if (p != prefetch_pending_.end() && p->second == request_id) {
      prefetch_pending_.erase(p);
    }
  }
  const auto kind = static_cast<ConflictKind>(rsp.w2);
  if (trace_ != nullptr) {
    trace_->OnAcquireComplete(env_.core_id(), request_id, static_cast<uint32_t>(granted),
                              granted < len ? kind : ConflictKind::kNone);
  }
  if (granted < len) {
    // The runtime routes with the same AddressMap the service validates
    // against, so a refusal always carries a conflict kind; a kind-less
    // refusal means a misrouted entry (map mismatch) and retrying the
    // identical batch would livelock silently.
    TM2C_CHECK_MSG(kind != ConflictKind::kNone,
                   "batch refused without a conflict kind: runtime/service AddressMap mismatch");
    if (pending_refusal_ == ConflictKind::kNone) {
      pending_refusal_ = kind;  // first refusal names the abort reason
    }
  }
}

void TxRuntime::WaitOneReply() {
  TM2C_CHECK_MSG(!inflight_.empty(), "waiting for a batch reply with none outstanding");
  for (;;) {
    Message msg = env_.Recv();
    switch (msg.type) {
      case MsgType::kBatchReply:
        CompleteBatch(msg);
        return;
      case MsgType::kAbortNotify:
        if (in_tx_ && msg.w1 == current_epoch_) {
          pending_abort_ = true;
          pending_abort_kind_ = static_cast<ConflictKind>(msg.w2);
        }
        continue;
      case MsgType::kBarrier:
        ++barrier_arrivals_[msg.w0];  // peer reached a privatization barrier
        continue;
      case MsgType::kOwnershipUpdate:
        ++stats_.ownership_updates;  // directory is shared; nothing to apply
        continue;
      default:
        if (local_service_ != nullptr) {
          env_.Compute(config_.multitask_switch_cycles);  // coroutine switch
          if (local_service_->HandleMessage(msg)) {
            continue;  // served a DTM request while waiting (Figure 2)
          }
        }
        TM2C_FATAL("unexpected message while awaiting a batch reply");
    }
  }
}

void TxRuntime::DrainInFlight() {
  while (!inflight_.empty()) {
    WaitOneReply();
  }
}

void TxRuntime::WaitForStripe(uint64_t stripe) {
  while (prefetch_pending_.find(stripe) != prefetch_pending_.end()) {
    WaitOneReply();
  }
}

bool TxRuntime::LocalFastPathEligible(uint32_t node) const {
  return config_.local_fast_path && local_service_ != nullptr && node == env_.core_id();
}

void TxRuntime::LocalAcquireSpanOrAbort(const std::vector<uint64_t>& stripes, bool is_write,
                                        bool committing) {
  const SimTime start = env_.LocalNow();
  const uint64_t request_id = next_request_id_++;
  const auto n = static_cast<uint32_t>(stripes.size());
  if (trace_ != nullptr) {
    trace_->OnAcquireIssue(env_.core_id(), request_id, env_.core_id(), n, is_write);
  }
  ConflictKind refused = ConflictKind::kNone;
  const uint32_t granted = local_service_->AcquireSpanDirect(
      current_epoch_, WireMetric(), stripes.data(), n, is_write, committing, &refused);
  for (uint32_t i = 0; i < granted; ++i) {
    const uint64_t stripe = stripes[i];
    if (is_write) {
      write_locks_.insert(stripe);
    } else if (read_locks_.insert(stripe).second) {
      read_lock_order_.push_back(stripe);
    }
  }
  stats_.acquire_time += env_.LocalNow() - start;
  stats_.lock_acquires += n;
  stats_.local_acquires += n;
  if (trace_ != nullptr) {
    trace_->OnAcquireComplete(env_.core_id(), request_id, granted,
                              granted < n ? refused : ConflictKind::kNone);
  }
  if (granted < n) {
    TM2C_CHECK_MSG(refused != ConflictKind::kNone,
                   "local span refused without a conflict kind");
    AbortSelf(refused);
  }
}

void TxRuntime::AcquireGroupsOrAbort(const std::map<uint32_t, std::vector<uint64_t>>& by_node,
                                     bool is_write, bool committing) {
  for (const auto& [node, stripes] : by_node) {
    if (pending_refusal_ != ConflictKind::kNone) {
      break;  // doomed: stop issuing, drain, abort below
    }
    if (LocalFastPathEligible(node)) {
      // Zero-message span acquisition: no 64-entry cap, one table pass.
      LocalAcquireSpanOrAbort(stripes, is_write, committing);
      continue;
    }
    for (size_t pos = 0; pos < stripes.size(); pos += config_.max_batch) {
      while (inflight_.size() >= config_.pipeline_depth &&
             pending_refusal_ == ConflictKind::kNone) {
        WaitOneReply();
      }
      if (pending_refusal_ != ConflictKind::kNone) {
        break;
      }
      const size_t len = std::min<size_t>(config_.max_batch, stripes.size() - pos);
      IssueBatch(node,
                 std::vector<uint64_t>(stripes.begin() + static_cast<ptrdiff_t>(pos),
                                       stripes.begin() + static_cast<ptrdiff_t>(pos + len)),
                 is_write, committing);
    }
  }
  // Every reply must land before the refusal takes effect: a late grant
  // belongs to the held-lock sets so the abort (or commit) path releases it.
  DrainInFlight();
  if (pending_refusal_ != ConflictKind::kNone) {
    const ConflictKind kind = pending_refusal_;
    pending_refusal_ = ConflictKind::kNone;
    AbortSelf(kind);
  }
}

void TxRuntime::AcquireReadLockOrAbort(uint64_t stripe) {
  const uint32_t node = map_.ResponsibleCore(stripe);
  if (LocalFastPathEligible(node)) {
    LocalAcquireSpanOrAbort({stripe}, /*is_write=*/false, /*committing=*/false);
    return;
  }
  Message req;
  req.type = MsgType::kReadLockReq;
  req.w0 = stripe;
  req.w1 = current_epoch_;
  req.w2 = WireMetric();
  Message rsp = AcquireRpc(node, std::move(req), 1);
  if (rsp.type == MsgType::kLockConflict) {
    AbortSelf(static_cast<ConflictKind>(rsp.w2));
  }
  if (read_locks_.insert(stripe).second) {
    read_lock_order_.push_back(stripe);
  }
}

void TxRuntime::TxPrefetch(const std::vector<uint64_t>& addrs) {
  CheckBodyContract();
  TM2C_CHECK_MSG(in_tx_, "tx.Prefetch outside a transaction");
  // Scalar wire semantics have nothing to overlap, and the elastic modes
  // keep their per-read window behaviour: both degrade to a no-op
  // (Prefetch is a hint, never required for correctness).
  if (config_.tx_mode != TxMode::kNormal || config_.max_batch <= 1) {
    return;
  }
  CheckPendingAbort();
  std::map<uint32_t, std::vector<uint64_t>> by_node;
  std::unordered_set<uint64_t> requested;
  for (uint64_t addr : addrs) {
    TM2C_DCHECK(addr % kWordBytes == 0);
    if (write_buffer_.find(addr) != write_buffer_.end() ||
        read_cache_.find(addr) != read_cache_.end()) {
      continue;
    }
    const uint64_t stripe = map_.StripeOf(addr);
    if (read_locks_.find(stripe) != read_locks_.end() ||
        write_locks_.find(stripe) != write_locks_.end() ||
        prefetch_pending_.find(stripe) != prefetch_pending_.end() ||
        !requested.insert(stripe).second) {
      continue;
    }
    by_node[map_.ResponsibleCore(stripe)].push_back(stripe);
  }
  for (const auto& [node, stripes] : by_node) {
    if (pending_refusal_ != ConflictKind::kNone) {
      break;  // already doomed; the next transactional op aborts
    }
    if (LocalFastPathEligible(node)) {
      LocalAcquireSpanOrAbort(stripes, /*is_write=*/false, /*committing=*/false);
      continue;
    }
    for (size_t pos = 0; pos < stripes.size(); pos += config_.max_batch) {
      while (inflight_.size() >= config_.pipeline_depth &&
             pending_refusal_ == ConflictKind::kNone) {
        WaitOneReply();
      }
      if (pending_refusal_ != ConflictKind::kNone) {
        break;
      }
      const size_t len = std::min<size_t>(config_.max_batch, stripes.size() - pos);
      std::vector<uint64_t> chunk(stripes.begin() + static_cast<ptrdiff_t>(pos),
                                  stripes.begin() + static_cast<ptrdiff_t>(pos + len));
      // Register before issuing: a self-addressed chunk resolves inside
      // IssueBatch and its CompleteBatch must find (and clear) the entries.
      const uint64_t request_id = next_request_id_;  // IssueBatch consumes it
      for (uint64_t stripe : chunk) {
        prefetch_pending_[stripe] = request_id;
      }
      IssueBatch(node, std::move(chunk), /*is_write=*/false, /*committing=*/false);
    }
  }
  // Lockstep configurations get the synchronous ReadMany-style acquisition
  // without the reads; a refusal surfaces at the next transactional op.
  if (config_.pipeline_depth == 1) {
    DrainInFlight();
  }
}

void TxRuntime::FireAndForget(uint32_t dst, Message msg) {
  ++stats_.messages_sent;
  if (dst == env_.core_id()) {
    TM2C_CHECK_MSG(local_service_ != nullptr, "self-addressed release without a local service");
    msg.src = env_.core_id();
    env_.Compute(config_.multitask_switch_cycles);  // coroutine switch
    local_service_->HandleLocal(std::move(msg));
    return;
  }
  env_.Send(dst, std::move(msg));
}

uint64_t TxRuntime::TxRead(uint64_t addr) {
  CheckBodyContract();
  TM2C_CHECK_MSG(in_tx_, "tx.Read outside a transaction");
  TM2C_DCHECK(addr % kWordBytes == 0);
  ++stats_.reads;
  switch (config_.tx_mode) {
    case TxMode::kNormal:
      return ReadNormal(addr, /*elastic_early=*/false);
    case TxMode::kElasticEarly:
      return ReadNormal(addr, /*elastic_early=*/true);
    case TxMode::kElasticRead:
      return ReadElasticValidated(addr);
  }
  TM2C_FATAL("bad tx mode");
}

std::vector<uint64_t> TxRuntime::TxReadMany(const std::vector<uint64_t>& addrs) {
  CheckBodyContract();
  TM2C_CHECK_MSG(in_tx_, "tx.ReadMany outside a transaction");
  std::vector<uint64_t> values;
  values.reserve(addrs.size());
  // The elastic modes keep their per-read window semantics (batching the
  // acquisitions would change which reads are protected when), and
  // max_batch == 1 means the batch protocol is off: both fall back to the
  // scalar path, read by read.
  if (config_.tx_mode != TxMode::kNormal || config_.max_batch <= 1) {
    for (uint64_t addr : addrs) {
      values.push_back(TxRead(addr));
    }
    return values;
  }
  stats_.reads += addrs.size();
  CheckPendingAbort();
  // Group the stripes that still need a read lock by responsible node; a
  // buffered write, a cached read, or an already-held lock covers its
  // address, and duplicates collapse to one entry.
  std::map<uint32_t, std::vector<uint64_t>> by_node;
  std::unordered_set<uint64_t> requested;
  for (uint64_t addr : addrs) {
    TM2C_DCHECK(addr % kWordBytes == 0);
    if (write_buffer_.find(addr) != write_buffer_.end() ||
        read_cache_.find(addr) != read_cache_.end()) {
      continue;
    }
    const uint64_t stripe = map_.StripeOf(addr);
    if (prefetch_pending_.find(stripe) != prefetch_pending_.end()) {
      WaitForStripe(stripe);  // the prefetched lock is about to land
    }
    if (read_locks_.find(stripe) != read_locks_.end() ||
        write_locks_.find(stripe) != write_locks_.end() || !requested.insert(stripe).second) {
      continue;
    }
    by_node[map_.ResponsibleCore(stripe)].push_back(stripe);
  }
  AcquireGroupsOrAbort(by_node, /*is_write=*/false, /*committing=*/false);
  // Every lock is held: the per-address reads below send no messages.
  for (uint64_t addr : addrs) {
    values.push_back(ReadNormal(addr, /*elastic_early=*/false));
  }
  return values;
}

uint64_t TxRuntime::ReadNormal(uint64_t addr, bool elastic_early) {
  // Algorithm 4 line 2-5: buffered values win.
  if (auto it = write_buffer_.find(addr); it != write_buffer_.end()) {
    return it->second;
  }
  if (auto it = read_cache_.find(addr); it != read_cache_.end()) {
    return it->second;
  }
  CheckPendingAbort();

  const uint64_t stripe = map_.StripeOf(addr);
  if (prefetch_pending_.find(stripe) != prefetch_pending_.end()) {
    // The stripe's lock is already on its way: wait for that reply instead
    // of issuing a second request (a refused prefetch aborts right here).
    WaitForStripe(stripe);
    CheckPendingAbort();
  }
  // FaultMode::kSkipReadLock (verification only): perform the read without
  // the visible-read lock, exactly the invisible-read bug the oracle must
  // catch.
  if (config_.fault != FaultMode::kSkipReadLock &&
      read_locks_.find(stripe) == read_locks_.end() &&
      write_locks_.find(stripe) == write_locks_.end()) {
    AcquireReadLockOrAbort(stripe);

    if (elastic_early) {
      // Elastic-early (Section 6.1): keep only the trailing window of read
      // locks; anything older is released with an extra message.
      while (read_lock_order_.size() > config_.elastic_window) {
        const uint64_t oldest = read_lock_order_.front();
        read_lock_order_.erase(read_lock_order_.begin());
        if (oldest == stripe || write_buffer_.find(oldest) != write_buffer_.end()) {
          continue;  // still needed: just acquired, or will be written
        }
        read_locks_.erase(oldest);
        // The value is no longer protected: remember it in case a later
        // write depends on it (see TxWrite below).
        if (auto it = read_cache_.find(oldest); it != read_cache_.end()) {
          early_released_values_[oldest] = it->second;
          read_cache_.erase(it);
        }
        Message rel;
        rel.type = MsgType::kEarlyReadRelease;
        rel.w0 = oldest;
        rel.w1 = current_epoch_;
        FireAndForget(map_.ResponsibleCore(oldest), std::move(rel));
        ++stats_.early_releases;
      }
    }
  }

  const uint64_t value = env_.ShmemRead(addr);
  if (trace_ != nullptr) {
    trace_->OnTxRead(env_.core_id(), addr, value);
  }
  read_cache_[addr] = value;
  CheckPendingAbort();
  return value;
}

uint64_t TxRuntime::ReadElasticValidated(uint64_t addr) {
  if (auto it = write_buffer_.find(addr); it != write_buffer_.end()) {
    return it->second;
  }
  CheckPendingAbort();
  const uint64_t value = env_.ShmemRead(addr);
  if (trace_ != nullptr) {
    trace_->OnTxRead(env_.core_id(), addr, value);
  }
  // Elastic-read (Section 6.1): after stepping to the next node, re-read
  // the trailing window and abort if any value changed under us.
  ValidateWindowOrAbort();
  validation_window_.emplace_back(addr, value);
  while (validation_window_.size() > config_.elastic_window) {
    validation_window_.pop_front();
  }
  // Also remember the value for commit-time validation: a location that
  // this transaction read and will overwrite must not have changed, or the
  // write would be based on a stale view (e.g. unlinking through a prev
  // pointer that a concurrent insert has since redirected).
  elastic_read_values_[addr] = value;
  return value;
}

void TxRuntime::ValidateWindowOrAbort() {
  for (const auto& [addr, value] : validation_window_) {
    if (env_.ShmemRead(addr) != value) {
      ++stats_.validation_failures;
      AbortSelf(ConflictKind::kReadAfterWrite);
    }
  }
}

void TxRuntime::TxWrite(uint64_t addr, uint64_t value) {
  CheckBodyContract();
  TM2C_CHECK_MSG(in_tx_, "tx.Write outside a transaction");
  TM2C_DCHECK(addr % kWordBytes == 0);
  ++stats_.writes;
  CheckPendingAbort();
  if (config_.tx_mode == TxMode::kElasticEarly) {
    // Writing a location whose read lock was early-released: the value the
    // write was derived from has been unprotected in the meantime. Re-take
    // the read lock and validate it; a change means a concurrent
    // transaction committed underneath (e.g. an insert through the same
    // predecessor link) and this transaction must restart.
    const uint64_t stripe = map_.StripeOf(addr);
    if (auto it = early_released_values_.find(stripe); it != early_released_values_.end()) {
      const uint64_t expected = it->second;
      AcquireReadLockOrAbort(stripe);
      early_released_values_.erase(stripe);
      if (env_.ShmemRead(addr) != expected) {
        ++stats_.validation_failures;
        AbortSelf(ConflictKind::kReadAfterWrite);
      }
      read_cache_[addr] = expected;
    }
  }
  if (config_.write_acquire == WriteAcquire::kEager) {
    const uint64_t stripe = map_.StripeOf(addr);
    if (write_locks_.find(stripe) == write_locks_.end()) {
      AcquireWriteLockOrAbort(stripe);
    }
  }
  // Deferred write (write-back): buffer locally, persist at commit.
  if (write_buffer_.emplace(addr, value).second) {
    write_order_.push_back(addr);
  } else {
    write_buffer_[addr] = value;
  }
}

void TxRuntime::AcquireWriteLockOrAbort(uint64_t stripe, bool committing) {
  const uint32_t node = map_.ResponsibleCore(stripe);
  if (LocalFastPathEligible(node)) {
    LocalAcquireSpanOrAbort({stripe}, /*is_write=*/true, committing);
    return;
  }
  Message req;
  req.type = MsgType::kWriteLockReq;
  req.w0 = stripe;
  req.w1 = current_epoch_;
  req.w2 = WireMetric();
  req.w3 = committing ? 1 : 0;
  Message rsp = AcquireRpc(node, std::move(req), 1);
  if (rsp.type == MsgType::kLockConflict) {
    AbortSelf(static_cast<ConflictKind>(rsp.w2));
  }
  write_locks_.insert(stripe);
}

void TxRuntime::TxCommit() {
  // Outstanding prefetches resolve first: their grants belong to the
  // held-lock sets before any lock is released, and a refused prefetch
  // must abort before the commit sequence starts.
  DrainInFlight();
  CheckPendingAbort();

  // Algorithm 3 lines 3-12: acquire the write locks for the buffered
  // writes (lazy acquisition; under eager mode they are already held —
  // revocations of those are caught by the abort status check below).
  if (!write_buffer_.empty()) {
    std::map<uint32_t, std::vector<uint64_t>> by_node;
    std::unordered_set<uint64_t> seen;
    for (uint64_t addr : write_order_) {
      const uint64_t stripe = map_.StripeOf(addr);
      if (write_locks_.find(stripe) != write_locks_.end() || !seen.insert(stripe).second) {
        continue;
      }
      by_node[map_.ResponsibleCore(stripe)].push_back(stripe);
    }
    if (config_.max_batch <= 1) {
      // Unbatched wire behaviour: one round trip per stripe.
      for (const auto& [node, stripes] : by_node) {
        (void)node;
        for (uint64_t stripe : stripes) {
          AcquireWriteLockOrAbort(stripe, /*committing=*/true);
        }
      }
    } else {
      // Write-lock batching (Section 3.3): all locks a node is responsible
      // for travel in chunks of at most max_batch addresses, up to
      // pipeline_depth chunks overlapped in flight.
      AcquireGroupsOrAbort(by_node, /*is_write=*/true, /*committing=*/true);
    }
  }

  // All locks held. A revocation of one of our read locks may still be in
  // flight; this is the last point it can take effect (see DESIGN.md).
  CheckPendingAbort();
  if (config_.tx_mode == TxMode::kElasticEarly && !write_buffer_.empty() &&
      !early_released_values_.empty()) {
    // Elastic-early update transactions re-validate the reads whose locks
    // were released early: a structural update (unlink/insert) may depend
    // on a link deep in the released prefix (for example, the reachability
    // of the node it writes behind), and a concurrent commit there would
    // otherwise go unnoticed. Searches skip this — ignoring such false
    // conflicts is the point of elasticity.
    for (const auto& [stripe, value] : early_released_values_) {
      if (env_.ShmemRead(stripe) != value) {
        ++stats_.validation_failures;
        AbortSelf(ConflictKind::kReadAfterWrite);
      }
    }
  }
  if (config_.tx_mode == TxMode::kElasticRead) {
    ValidateWindowOrAbort();
    // Update transactions validate their whole read set: a structural
    // write (unlinking a node, say) depends on reads well outside the
    // sliding window — the predecessor link it rewrites, but also the
    // next-pointer it routes around, which a concurrent insert may have
    // changed without touching any address this transaction writes.
    // Read-only transactions keep the cheap window-only validation (the
    // elastic semantics for searches).
    if (!write_buffer_.empty()) {
      for (const auto& [addr, value] : elastic_read_values_) {
        if (write_buffer_.find(addr) != write_buffer_.end()) {
          continue;  // will be overwritten; staleness checked via its read
        }
        if (env_.ShmemRead(addr) != value) {
          ++stats_.validation_failures;
          AbortSelf(ConflictKind::kReadAfterWrite);
        }
      }
      for (uint64_t addr : write_order_) {
        auto it = elastic_read_values_.find(addr);
        if (it != elastic_read_values_.end() && env_.ShmemRead(addr) != it->second) {
          ++stats_.validation_failures;
          AbortSelf(ConflictKind::kReadAfterWrite);
        }
      }
    }
  }

  // FaultMode::kReleaseBeforePersist (verification only): give up every
  // lock first, then write back word at a time, paying (and yielding for)
  // the memory latency between words. Other transactions can lock, read
  // and overwrite the not-yet-persisted data in that window — the classic
  // broken-2PL bug the oracle must catch.
  if (config_.fault == FaultMode::kReleaseBeforePersist) {
    ReleaseAllLocks();
    for (uint64_t addr : write_order_) {
      env_.ShmemWrite(addr, write_buffer_[addr]);
      if (trace_ != nullptr) {
        trace_->OnTxPersist(env_.core_id(), addr, write_buffer_[addr]);
      }
    }
    if (trace_ != nullptr) {
      trace_->OnTxCommit(env_.core_id(), env_.GlobalNow());
    }
    return;
  }

  // Commit point. With the abort-status protocol enabled, the status read
  // and the whole write-set persist execute at one simulated instant: a
  // revocation either lands before (the status word names our epoch and we
  // abort with no writes applied) or after (we are fully persisted and the
  // revoker serializes behind us). Without it — standalone harnesses — the
  // persist is word-at-a-time and relies on notification timing alone.
  if (config_.abort_status_base != TmConfig::kNoAbortStatus) {
    const uint64_t status_addr = config_.abort_status_base + env_.core_id() * kWordBytes;
    (void)env_.ShmemRead(status_addr);  // pay the access latency
    // Re-read instantly after the timed access: nothing can interleave
    // between this load and the stores below (single simulated instant).
    if (env_.shmem().LoadWord(status_addr) == current_epoch_) {
      ++stats_.notify_aborts;
      AbortSelf(pending_abort_kind_ != ConflictKind::kNone ? pending_abort_kind_
                                                           : ConflictKind::kWriteAfterRead);
    }
    // Elastic updates: re-validate at this same instant. The timed
    // validation above paid the cost, but a foreign commit can land
    // between it and this point (unlocked reads leave that window open);
    // the instant recheck makes validation and persist atomic. Written
    // locations are exempt: their write locks have been held since before
    // the timed validation, so nothing can have changed them since it
    // passed.
    if (config_.tx_mode == TxMode::kElasticRead && !write_buffer_.empty()) {
      for (const auto& [addr, value] : elastic_read_values_) {
        if (write_buffer_.find(addr) == write_buffer_.end() &&
            env_.shmem().LoadWord(addr) != value) {
          ++stats_.validation_failures;
          AbortSelf(ConflictKind::kReadAfterWrite);
        }
      }
    }
    if (config_.tx_mode == TxMode::kElasticEarly && !write_buffer_.empty()) {
      for (const auto& [stripe, value] : early_released_values_) {
        if (env_.shmem().LoadWord(stripe) != value) {
          ++stats_.validation_failures;
          AbortSelf(ConflictKind::kReadAfterWrite);
        }
      }
    }
    for (uint64_t addr : write_order_) {
      env_.shmem().StoreWord(addr, write_buffer_[addr]);
      if (trace_ != nullptr) {
        trace_->OnTxPersist(env_.core_id(), addr, write_buffer_[addr]);
      }
    }
    // Charge the persist time after the fact (idempotence-free: no re-store).
    env_.Compute(env_.platform().mem_latency_cycles * write_order_.size());
  } else {
    // Algorithm 3 line 14: persist the write-set to shared memory.
    for (uint64_t addr : write_order_) {
      env_.ShmemWrite(addr, write_buffer_[addr]);
      if (trace_ != nullptr) {
        trace_->OnTxPersist(env_.core_id(), addr, write_buffer_[addr]);
      }
    }
  }

  // Durability: the persisted write set becomes a commit-log record on
  // every owner partition BEFORE any lock is released. The acks gate the
  // release, so the partition's record order equals its persist order.
  if (config_.durability != DurabilityMode::kOff) {
    LogCommitDurable();
  }

  // Algorithm 3 lines 16-17: release all locks.
  ReleaseAllLocks();
  if (trace_ != nullptr) {
    trace_->OnTxCommit(env_.core_id(), env_.GlobalNow());
  }
}

void TxRuntime::LogCommitDurable() {
  if (write_order_.empty()) {
    return;  // read-only commits leave no durable trace
  }
  // Group the persisted (addr, value) pairs by owner partition's service
  // core, preserving persist order within each group.
  std::map<uint32_t, std::vector<uint64_t>> by_node;
  for (uint64_t addr : write_order_) {
    // Routed by the address's frozen durable home, not the (migratable)
    // lock owner: a range's commit records must keep landing in the WAL
    // whose checkpoint image covers its slab, or recovery would have to
    // merge logs across partitions.
    const uint32_t node = map_.DurableHomeCore(map_.StripeOf(addr));
    // Durability is restricted to the dedicated deployment: a self-
    // addressed kCommitLog would deadlock the ack wait (and the group-
    // commit flush of a peer could deadlock distributed waits).
    TM2C_CHECK_MSG(node != env_.core_id(),
                   "durability requires the dedicated deployment");
    std::vector<uint64_t>& flat = by_node[node];
    flat.push_back(addr);
    flat.push_back(write_buffer_[addr]);
  }
  const SimTime wait_start = env_.LocalNow();
  uint32_t awaiting = 0;
  for (auto& [node, flat] : by_node) {
    Message msg;
    msg.type = MsgType::kCommitLog;
    msg.w1 = current_epoch_;
    msg.extra = std::move(flat);
    env_.Send(node, std::move(msg));
    ++stats_.messages_sent;
    ++stats_.commit_log_msgs;
    ++awaiting;
  }
  while (awaiting > 0) {
    Message msg = env_.Recv();
    switch (msg.type) {
      case MsgType::kCommitLogAck:
        TM2C_CHECK(msg.w1 == current_epoch_);
        --awaiting;
        break;
      case MsgType::kAbortNotify:
        // Too late: the write set is already persisted and logged — this
        // commit wins; the revoker's refusal bounced it already.
        break;
      case MsgType::kBarrier:
        ++barrier_arrivals_[msg.w0];
        break;
      case MsgType::kOwnershipUpdate:
        ++stats_.ownership_updates;  // directory is shared; nothing to apply
        break;
      default:
        TM2C_FATAL("unexpected message while awaiting kCommitLogAck");
    }
  }
  stats_.commit_log_wait += env_.LocalNow() - wait_start;
}

void TxRuntime::ReleaseAllLocks() {
  std::map<uint32_t, std::vector<uint64_t>> reads_by_node;
  for (uint64_t stripe : read_locks_) {
    reads_by_node[map_.ResponsibleCore(stripe)].push_back(stripe);
  }
  std::map<uint32_t, std::vector<uint64_t>> writes_by_node;
  for (uint64_t stripe : write_locks_) {
    writes_by_node[map_.ResponsibleCore(stripe)].push_back(stripe);
  }
  for (auto& [node, stripes] : writes_by_node) {
    std::sort(stripes.begin(), stripes.end());  // determinism across runs
    Message msg;
    msg.type = MsgType::kReleaseAllWrites;
    msg.w1 = current_epoch_;
    msg.extra = std::move(stripes);
    FireAndForget(node, std::move(msg));
  }
  for (auto& [node, stripes] : reads_by_node) {
    std::sort(stripes.begin(), stripes.end());
    Message msg;
    msg.type = MsgType::kReleaseAllReads;
    msg.w1 = current_epoch_;
    msg.extra = std::move(stripes);
    FireAndForget(node, std::move(msg));
  }
  read_locks_.clear();
  write_locks_.clear();
}

void TxRuntime::AbortSelf(ConflictKind reason) {
  // Late grants from still-outstanding batches must be recorded before the
  // locks are released below, or they would leak into the next attempt.
  DrainInFlight();
  pending_refusal_ = ConflictKind::kNone;
  prefetch_pending_.clear();
  switch (reason) {
    case ConflictKind::kReadAfterWrite:
      ++stats_.raw_conflicts;
      break;
    case ConflictKind::kWriteAfterWrite:
      ++stats_.waw_conflicts;
      break;
    case ConflictKind::kWriteAfterRead:
      ++stats_.war_conflicts;
      break;
    case ConflictKind::kMigrating:
      ++stats_.migrating_aborts;
      break;
    case ConflictKind::kOverload:
      ++stats_.overload_aborts;
      break;
    case ConflictKind::kNone:
      break;
  }
  ReleaseAllLocks();
  stats_.busy_time += env_.LocalNow() - attempt_start_local_;
  if (trace_ != nullptr) {
    trace_->OnTxAbort(env_.core_id(), env_.GlobalNow(), reason);
  }
  abort_thrown_ = true;
  throw TxAbortException{reason};
}

}  // namespace tm2c

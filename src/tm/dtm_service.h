// The DTM service: one instance per service core (Figure 1).
//
// Wraps a LockTable partition and a contention manager behind the wire
// protocol. The dedicated deployment runs RunLoop() as the core's main; the
// multitasked deployment calls HandleMessage() from the application task's
// wait loops, and HandleLocal() for requests whose responsible node is the
// requesting core itself.
#ifndef TM2C_SRC_TM_DTM_SERVICE_H_
#define TM2C_SRC_TM_DTM_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/cm/contention_manager.h"
#include "src/dslock/lock_table.h"
#include "src/runtime/core_env.h"
#include "src/tm/address_map.h"
#include "src/tm/config.h"
#include "src/tm/trace.h"

namespace tm2c {

class PartitionDurability;

struct DtmServiceStats {
  uint64_t requests = 0;
  uint64_t releases = 0;
  uint64_t notifications_sent = 0;
  uint64_t stale_requests_refused = 0;
  uint64_t batch_requests = 0;       // kBatchAcquire messages served
  uint64_t batch_entries = 0;        // addresses across those batches
  uint64_t misrouted_refused = 0;    // batch entries outside this partition
  uint64_t local_direct_requests = 0;  // owner-local fast-path span calls
  uint64_t local_direct_entries = 0;   // stripes across those spans
  uint64_t commit_records = 0;         // kCommitLog records appended
  uint64_t log_flushes = 0;            // group-commit flushes performed
  uint64_t migrations_started = 0;     // drain windows opened on this core
  uint64_t migrations_completed = 0;   // directory flips performed
  uint64_t migrating_refused = 0;      // acquires refused: range draining
  uint64_t overload_refused = 0;       // acquires refused: inbox high water
};

class DtmService {
 public:
  // `map`, when provided, lets the service refuse batch entries that hash
  // to a different partition (a misrouted request would otherwise corrupt
  // two nodes' views of the same stripe). TmSystem always passes it; bare
  // harnesses may skip the check.
  DtmService(CoreEnv& env, const TmConfig& config, const AddressMap* map = nullptr);

  // Dedicated-deployment main: serve until the engine stops the run or a
  // kShutdown message arrives.
  void RunLoop();

  // Handles one DTM message; responses and abort notifications are sent
  // through the environment. Returns false when the message is not a DTM
  // request (the caller owns it).
  bool HandleMessage(const Message& msg);

  // Synchronous processing of a request originating from this very core
  // (multitasked deployment). Notifications to third parties are still
  // sent; the response is returned directly.
  Message HandleLocal(const Message& request);

  // Owner-local fast path: the requesting runtime runs on this very core
  // and skips the message layer entirely — no Message is built and no
  // coroutine-switch cost is charged; only the service processing cost is.
  // Semantics match a kBatchAcquire from this core: whole-span stale-epoch
  // refusal, all-or-prefix grants, victims notified through the normal
  // paths (including the local abort sink). The caller guarantees every
  // stripe belongs to this partition (it grouped them with the same
  // AddressMap the service validates against). Returns the granted prefix
  // length; `*refused` carries the first refusal's kind (kNone when fully
  // granted).
  uint32_t AcquireSpanDirect(uint64_t epoch, uint64_t metric_wire, const uint64_t* addrs,
                             uint32_t n, bool is_write, bool committing, ConflictKind* refused);

  // Multitasked deployment: a victim of a revocation can be a transaction
  // running on this very core; the sink delivers the abort locally instead
  // of a self-addressed message.
  void SetLocalAbortSink(std::function<void(uint64_t epoch, ConflictKind kind)> sink) {
    local_abort_sink_ = std::move(sink);
  }

  // Attaches this partition's durability object (dedicated deployment
  // only). Commits then ship their write sets here as kCommitLog messages;
  // the service appends them, group-commits, and acknowledges. The service
  // does not own the object (TmSystem does — checkpoints and the log image
  // outlive the service for recovery).
  void AttachDurability(PartitionDurability* durability);

  // Process-backend restart: the (core, epoch) pairs whose commit records
  // survived in the recovered WAL prefix, mapped to their record index. A
  // retransmitted kCommitLog matching an entry is acknowledged with its
  // original index instead of appended again — the record is already
  // durable, and re-logging it would duplicate it in the replayed log.
  void SetRecoveredCommits(std::map<std::pair<uint32_t, uint64_t>, uint64_t> commits) {
    recovered_commits_ = std::move(commits);
  }

  // Group commit: flushes every appended-but-unflushed record and sends
  // the deferred kCommitLogAck responses. Called when the group fills,
  // when the inbox drains (flush-before-block), at checkpoints and at
  // shutdown. No-op without durability or with nothing unflushed.
  void FlushCommitLog();

  // Horizon quiesce (called by TmSystem after the run ends): makes every
  // appended record durable without modelling service compute — the
  // simulated horizon can freeze the service fiber between an append and
  // the group-commit flush, and the records are already in the log.
  // Deferred acks are dropped, not sent: their committers are frozen past
  // the horizon too, and a post-run ack would be a fabricated event.
  void QuiesceFlush();

  // Opens a drain window for the exact registered range [base,
  // base + bytes): revocable holders are revoked through the normal CM
  // notification path, new acquires touching the range are refused with
  // ConflictKind::kMigrating, and once the lock table holds no entry in
  // the range the ownership directory flips to `target_partition` and a
  // kOwnershipUpdate is broadcast. Ignored when this core is not the
  // range's current owner (a stale request racing a previous migration)
  // or when a drain of the range is already open.
  void BeginMigration(uint64_t base, uint64_t bytes, uint32_t target_partition);

  // True while any migration drain window is open on this service.
  bool migrating() const { return !migrating_out_.empty(); }

  const LockTable& lock_table() const { return table_; }
  const DtmServiceStats& stats() const { return stats_; }

  // Attaches the execution-trace recorder (verification harnesses only);
  // the service reports revocations — and durability events — through it.
  void set_trace(TxTraceSink* trace);

 private:
  struct RemoteCoreState {
    uint64_t aborted_epoch = 0;  // most recent epoch this node revoked
    ConflictKind aborted_kind = ConflictKind::kNone;
  };

  // Dispatches a request and produces the response (no response for
  // release-type messages: Message.type stays kInvalid).
  Message Process(const Message& msg);

  Message HandleAcquire(const Message& msg, bool is_write);
  Message HandleBatchAcquire(const Message& msg);
  void HandleCommitLog(const Message& msg);
  void SendCommitLogAck(uint32_t core, uint64_t epoch, uint64_t record_index);
  void HandleRelease(const Message& msg);
  void NotifyVictims(const std::vector<Victim>& victims);
  TxInfo DecodeRequester(const Message& msg) const;
  void ChargeProcessing(uint64_t items);

  // True when `stripe` falls inside a range this service is draining.
  bool MigratingStripe(uint64_t stripe) const;
  // Completes every open drain whose range has emptied: directory flip,
  // kOwnershipUpdate broadcast, trace event. Called after drains and after
  // every release.
  void MaybeCompleteMigrations();
  // Admission control: true when a non-committing acquire must be refused
  // with ConflictKind::kOverload (inbox above the high-water mark).
  bool Overloaded(bool committing) const;
  // Migration policy: tallies the acquire against its owned range (if any)
  // and, every migrate_check_every requests, migrates the hottest
  // above-threshold range to the next partition.
  void NoteAcquiresForPolicy(const uint64_t* addrs, uint32_t n);
  // Per-granted-stripe trace emission (migration-oracle input).
  void TraceGrants(uint32_t requester_core, const uint64_t* addrs, uint32_t n);

  CoreEnv& env_;
  TmConfig config_;
  const AddressMap* map_;
  std::unique_ptr<ContentionManager> cm_;
  LockTable table_;
  std::unordered_map<uint32_t, RemoteCoreState> remote_state_;
  std::function<void(uint64_t, ConflictKind)> local_abort_sink_;
  TxTraceSink* trace_ = nullptr;
  PartitionDurability* durability_ = nullptr;
  // Acks deferred by group commit; drained by FlushCommitLog().
  struct PendingAck {
    uint32_t core;
    uint64_t epoch;
    uint64_t record_index;
  };
  std::vector<PendingAck> pending_acks_;
  // (core, epoch) -> record index of commits that survived a restart's WAL
  // recovery; consumed by their retransmissions (see SetRecoveredCommits).
  std::map<std::pair<uint32_t, uint64_t>, uint64_t> recovered_commits_;
  // Open drain windows: range base -> (bytes, target partition). Usually
  // empty or a single entry; lookups are a bounded map walk.
  struct MigratingRange {
    uint64_t bytes = 0;
    uint32_t target_partition = 0;
  };
  std::map<uint64_t, MigratingRange> migrating_out_;
  // Migration-policy tallies: owned-range base -> acquires since the last
  // policy check, plus the request countdown to the next check.
  std::unordered_map<uint64_t, uint64_t> range_hits_;
  uint32_t policy_countdown_ = 0;
  DtmServiceStats stats_;
};

}  // namespace tm2c

#endif  // TM2C_SRC_TM_DTM_SERVICE_H_

// Child-side trace sink for the process backend.
//
// A forked partition server cannot call into the host's TxTraceSink — the
// sink object in its address space is an inert copy-on-write duplicate. Its
// durability events (WAL appends, acks, flushes, checkpoints, the restart
// truncate) instead ride the partition's socket as kTrace* messages
// addressed to wire.h's kWireHostDst; the host-side router replays them
// into the real sink. The socket FIFO preserves per-partition order, which
// is all the crash-restart oracle needs.
//
// The transaction-level hooks are no-ops: a partition server never runs
// application transactions. Service-side revocation events are dropped too
// — they are human-readable dump context, and no process-backend oracle
// consumes them. The partition id is not encoded: the host knows it from
// which socket the frame arrived on.
#ifndef TM2C_SRC_TM_WIRE_TRACE_H_
#define TM2C_SRC_TM_WIRE_TRACE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/runtime/core_env.h"
#include "src/runtime/wire.h"
#include "src/tm/trace.h"

namespace tm2c {

class WireTraceSink : public TxTraceSink {
 public:
  explicit WireTraceSink(CoreEnv* env) : env_(env) {}

  void OnTxBegin(uint32_t, uint64_t, SimTime) override {}
  void OnTxRead(uint32_t, uint64_t, uint64_t) override {}
  void OnTxPersist(uint32_t, uint64_t, uint64_t) override {}
  void OnTxCommit(uint32_t, SimTime) override {}
  void OnTxAbort(uint32_t, SimTime, ConflictKind) override {}
  void OnRevocation(uint32_t, uint32_t, uint64_t, ConflictKind) override {}

  void OnWalAppend(uint32_t /*partition*/, uint32_t core, uint64_t epoch,
                   uint64_t record_index,
                   const std::vector<std::pair<uint64_t, uint64_t>>& pairs) override {
    Message msg;
    msg.type = MsgType::kTraceWalAppend;
    msg.w0 = record_index;
    msg.w1 = epoch;
    msg.w2 = core;
    msg.extra.reserve(2 * pairs.size());
    for (const auto& [addr, value] : pairs) {
      msg.extra.push_back(addr);
      msg.extra.push_back(value);
    }
    env_->Send(kWireHostDst, std::move(msg));
  }

  void OnCommitLogAck(uint32_t /*partition*/, uint32_t core, uint64_t epoch,
                      uint64_t record_index) override {
    Message msg;
    msg.type = MsgType::kTraceCommitLogAck;
    msg.w0 = record_index;
    msg.w1 = epoch;
    msg.w2 = core;
    env_->Send(kWireHostDst, std::move(msg));
  }

  void OnWalFlush(uint32_t /*partition*/, uint64_t durable_records,
                  uint64_t durable_bytes) override {
    Message msg;
    msg.type = MsgType::kTraceWalFlush;
    msg.w0 = durable_records;
    msg.w1 = durable_bytes;
    env_->Send(kWireHostDst, std::move(msg));
  }

  void OnCheckpoint(uint32_t /*partition*/, uint64_t checkpoint_index,
                    uint64_t records_covered) override {
    Message msg;
    msg.type = MsgType::kTraceCheckpoint;
    msg.w0 = checkpoint_index;
    msg.w1 = records_covered;
    env_->Send(kWireHostDst, std::move(msg));
  }

  void OnWalTruncate(uint32_t /*partition*/, uint64_t records_remaining,
                     uint64_t valid_bytes) override {
    Message msg;
    msg.type = MsgType::kTraceWalTruncate;
    msg.w0 = records_remaining;
    msg.w1 = valid_bytes;
    env_->Send(kWireHostDst, std::move(msg));
  }

 private:
  CoreEnv* env_;
};

}  // namespace tm2c

#endif  // TM2C_SRC_TM_WIRE_TRACE_H_

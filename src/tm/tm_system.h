// Top-level convenience wiring: a many-core running TM2C.
//
// TmSystem builds the selected runtime backend — the deterministic
// simulator (BackendKind::kSim, the default) or real OS threads over
// lock-free SPSC channels (BackendKind::kThreads) — installs a DtmService
// on every service core (dedicated deployment) or on every core
// (multitasked), and gives each application core a TxRuntime. Benchmarks
// and examples only provide per-app-core bodies; the same body code runs
// unmodified on either backend.
#ifndef TM2C_SRC_TM_TM_SYSTEM_H_
#define TM2C_SRC_TM_TM_SYSTEM_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/durability/partition_log.h"
#include "src/runtime/backend.h"
#include "src/runtime/process_system.h"
#include "src/runtime/sim_system.h"
#include "src/runtime/thread_system.h"
#include "src/tm/address_map.h"
#include "src/tm/dtm_service.h"
#include "src/tm/tx_runtime.h"

namespace tm2c {

struct TmSystemConfig {
  // Topology, platform, deployment and sizing — shared by both backends
  // (the thread backend uses platform/num_cores/num_service/strategy/
  // shmem_bytes and ignores the simulation-only knobs).
  SimSystemConfig sim;
  TmConfig tm;

  BackendKind backend = BackendKind::kSim;
  // Thread-backend tuning; ignored under the simulator.
  ChannelKind channel = ChannelKind::kSpscRing;
  bool pin_threads = false;
  uint32_t channel_capacity = 256;
  // Process backend only: directory for the partition sockets and (when
  // durability is on) the per-partition WAL backing files. Required there,
  // ignored elsewhere. Pass a fresh per-run (temp) directory.
  std::string run_dir;
};

class TmSystem {
 public:
  explicit TmSystem(TmSystemConfig config);

  // Body run by the `app_index`-th application core (0-based among app
  // cores). Bodies typically loop for a fixed duration:
  //   const SimTime t0 = env.GlobalNow();
  //   while (env.GlobalNow() - t0 < duration) { rt.Execute(...); }
  using AppBody = std::function<void(CoreEnv&, TxRuntime&)>;

  void SetAppBody(uint32_t app_index, AppBody body);
  // Installs the same body on every application core.
  void SetAllAppBodies(const AppBody& body);

  // Runs the system and returns the elapsed time: simulated time under the
  // simulator (bounded by `until`), wall-clock time under threads (where
  // `until` is ignored — bodies bound their own work, and the last
  // finishing app core shuts the service loops down).
  SimTime Run(SimTime until = UINT64_MAX);

  uint32_t num_app_cores() const { return system_->deployment().num_app(); }
  const TxStats& AppStats(uint32_t app_index) const;
  TxStats MergedStats() const;
  const DtmService& ServiceAt(uint32_t partition) const;

  // End-of-run invariant: once every application body has completed (all
  // transactions committed or abandoned and their releases processed), no
  // partition may still hold a lock. Returns true when all tables are
  // empty. Meaningless if the run was cut mid-transaction by a horizon.
  bool AllLockTablesEmpty() const;

  // Attaches an execution-trace recorder (typically a check::History) to
  // every runtime and service. Call before Run(); verification only.
  // Simulator: any sink. Process backend: the sink MUST be wrapped in a
  // MutexTraceSink (app threads and partition routers feed it
  // concurrently); partition-server durability events arrive over the
  // sockets as kTrace* frames and are replayed into it here. Thread
  // backend: unsupported (no per-event ordering to preserve them with).
  void AttachTrace(TxTraceSink* trace);

  // Backend-agnostic handles (work under sim and threads alike).
  SystemBackend& system() { return *system_; }
  const DeploymentPlan& deployment() const { return system_->deployment(); }
  SharedMemory& shmem() { return system_->shmem(); }
  ShmAllocator& allocator() { return system_->allocator(); }
  BackendKind backend() const { return config_.backend; }

  // Simulator-specific handle (engine, latency model, chaos). Checked:
  // only valid when backend() == BackendKind::kSim.
  SimSystem& sim();

  // Process-specific handle (kill/restart chaos, exit reports). Checked:
  // only valid when backend() == BackendKind::kProcesses.
  ProcessSystem& process();

  // SIGKILLs the partition's server process mid-run (process backend
  // only); its cold standby recovers the partition from the WAL.
  void KillPartition(uint32_t partition) { process().KillPartition(partition); }

  // Post-run service-side counters. Identical to ServiceAt(p).stats() on
  // sim and threads; under processes the values come from the partition
  // server's exit report — the host's DtmService object is a stale
  // pre-fork image (counters accumulated before a kill die with the
  // killed server; the report is the successor's).
  DtmServiceStats ServiceStats(uint32_t partition) const;

  // Durability handles (only valid when config.tm.durability != kOff;
  // one PartitionDurability per service partition, owned here so the log
  // image and checkpoints outlive the run for recovery).
  PartitionDurability& DurabilityAt(uint32_t partition);
  bool durability_enabled() const { return !durability_.empty(); }

  // Captures every registered owned range's current slab words as each
  // partition's checkpoint 0 (the post-load baseline image). Call after
  // the host-side load phase and before Run().
  void CaptureDurableCheckpoint0();

  const AddressMap& address_map() const { return map_; }
  // Mutable for setup-time AddressMap::AddOwnedRange registration (the
  // runtimes' and services' map copies share the ownership directory).
  AddressMap& address_map() { return map_; }
  const TmSystemConfig& config() const { return config_; }

 private:
  // Called by every app core main after its body returns; under the thread
  // backend the last one shuts down the cores still blocked in Recv.
  void OnAppBodyDone();

  // Installs the process backend's hooks (pre-fork WAL flush, child-side
  // trace/recovery, exit reports, host-side trace-frame replay).
  void WireProcessBackend();

  TmSystemConfig config_;
  std::unique_ptr<SystemBackend> system_;
  AddressMap map_;
  std::vector<std::unique_ptr<DtmService>> services_;   // per service core
  // Per-partition durability (empty when config.tm.durability == kOff).
  std::vector<std::unique_ptr<PartitionDurability>> durability_;
  std::vector<std::unique_ptr<TxRuntime>> runtimes_;    // per app core
  std::vector<AppBody> bodies_;                         // per app core
  std::atomic<uint32_t> apps_running_{0};
  // Sink from AttachTrace, consulted by the process backend's host-frame
  // replay (set before Run, read by router threads during it).
  TxTraceSink* attached_trace_ = nullptr;
};

}  // namespace tm2c

#endif  // TM2C_SRC_TM_TM_SYSTEM_H_

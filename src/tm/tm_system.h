// Top-level convenience wiring: a simulated many-core running TM2C.
//
// TmSystem builds the simulator backend, installs a DtmService on every
// service core (dedicated deployment) or on every core (multitasked), and
// gives each application core a TxRuntime. Benchmarks and examples only
// provide per-app-core bodies.
#ifndef TM2C_SRC_TM_TM_SYSTEM_H_
#define TM2C_SRC_TM_TM_SYSTEM_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/runtime/sim_system.h"
#include "src/tm/address_map.h"
#include "src/tm/dtm_service.h"
#include "src/tm/tx_runtime.h"

namespace tm2c {

struct TmSystemConfig {
  SimSystemConfig sim;
  TmConfig tm;
};

class TmSystem {
 public:
  explicit TmSystem(TmSystemConfig config);

  // Body run by the `app_index`-th application core (0-based among app
  // cores). Bodies typically loop until the simulated horizon:
  //   while (env.GlobalNow() < horizon) { rt.Execute(...); }
  using AppBody = std::function<void(CoreEnv&, TxRuntime&)>;

  void SetAppBody(uint32_t app_index, AppBody body);
  // Installs the same body on every application core.
  void SetAllAppBodies(const AppBody& body);

  SimTime Run(SimTime until = UINT64_MAX);

  uint32_t num_app_cores() const { return sim_.deployment().num_app(); }
  const TxStats& AppStats(uint32_t app_index) const;
  TxStats MergedStats() const;
  const DtmService& ServiceAt(uint32_t partition) const;

  // End-of-run invariant: once every application body has completed (all
  // transactions committed or abandoned and their releases processed), no
  // partition may still hold a lock. Returns true when all tables are
  // empty. Meaningless if the run was cut mid-transaction by a horizon.
  bool AllLockTablesEmpty() const;

  // Attaches an execution-trace recorder (typically a check::History) to
  // every runtime and service. Call before Run(); verification only.
  void AttachTrace(TxTraceSink* trace);

  SimSystem& sim() { return sim_; }
  const AddressMap& address_map() const { return map_; }
  const TmSystemConfig& config() const { return config_; }

 private:
  TmSystemConfig config_;
  SimSystem sim_;
  AddressMap map_;
  std::vector<std::unique_ptr<DtmService>> services_;   // per service core
  std::vector<std::unique_ptr<TxRuntime>> runtimes_;    // per app core
  std::vector<AppBody> bodies_;                         // per app core
};

}  // namespace tm2c

#endif  // TM2C_SRC_TM_TM_SYSTEM_H_

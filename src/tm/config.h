// TM2C configuration knobs.
#ifndef TM2C_SRC_TM_CONFIG_H_
#define TM2C_SRC_TM_CONFIG_H_

#include <cstdint>

#include "src/cm/contention_manager.h"

namespace tm2c {

// When write locks are acquired (Section 3.3). TM2C's default is lazy
// (deferred writes / write-back, locks taken at commit); eager takes the
// lock at txwrite time and is kept as the Figure 4(c) ablation.
enum class WriteAcquire : uint8_t {
  kLazy = 0,
  kEager = 1,
};

// Transaction execution mode (Sections 3 and 6).
enum class TxMode : uint8_t {
  kNormal = 0,        // visible reads, read locks held to commit
  kElasticEarly = 1,  // early release of read locks outside the window
  kElasticRead = 2,   // no read locks; value-based read validation
};

// Planted protocol mutations for the verification subsystem (src/check/).
// Each mode breaks one safety-critical step of the protocol; the
// serializability oracle must flag every one of them (tests/check_test.cc
// asserts it does), which is the evidence that the oracle has teeth.
// Production configurations always run kNone.
enum class FaultMode : uint8_t {
  kNone = 0,
  // The runtime performs visible reads WITHOUT acquiring the read lock:
  // reads are no longer visible to writers, so a concurrent commit can
  // slide between a read and the reader's commit point (lost updates,
  // torn snapshots).
  kSkipReadLock = 1,
  // The service revokes locks (the CM's decision stands and the winner
  // proceeds) but never tells the victim: no stale-epoch refusal of the
  // victim's later requests — stale-epoch batch entries are granted — no
  // abort-status publication, no notification. Winner and victim both
  // reach their commit points on conflicting lock sets.
  kIgnoreRevocation = 2,
  // The committing runtime releases its write locks BEFORE persisting the
  // write-back buffer (word at a time), opening a window in which other
  // transactions lock, read and overwrite stale data.
  kReleaseBeforePersist = 3,
  // Durability only: the DTM service acknowledges a kCommitLog append
  // IMMEDIATELY, before the group-commit flush makes the record durable.
  // The commit completes against a volatile log tail; a crash between the
  // ack and the flush silently loses an acknowledged commit. The
  // crash-restart oracle (CheckCrashRestartHistory) must flag it.
  kAckBeforeLogFlush = 4,
  // Migration only: the old owner keeps GRANTING acquires for a range it
  // is draining instead of refusing them with kMigrating. The range never
  // empties (new holders keep arriving), the flip never happens, and every
  // grant inside the drain window is a grant the protocol forbids. The
  // migration oracle (CheckMigrationHistory) must flag each one.
  kGrantDuringMigration = 5,
  // Application-level SMO fault (the protocol itself stays intact): a
  // B+-tree leaf split publishes the new leaf in the leaf chain but skips
  // linking it into its parent. The serializability oracle sees nothing —
  // every transaction is internally correct — which is exactly the point:
  // OrderedIndex::HostCheckStructure's tree-shape invariants must catch
  // it. Applied by OrderedIndex (src/apps/ordered_index.h) when the chaos
  // harness plumbs it through; ignored by the runtime and lock service.
  kSmoSkipParentLink = 6,
};

inline const char* FaultModeName(FaultMode f) {
  switch (f) {
    case FaultMode::kNone:
      return "none";
    case FaultMode::kSkipReadLock:
      return "skip-read-lock";
    case FaultMode::kIgnoreRevocation:
      return "ignore-revocation";
    case FaultMode::kReleaseBeforePersist:
      return "release-before-persist";
    case FaultMode::kAckBeforeLogFlush:
      return "ack-before-log-flush";
    case FaultMode::kGrantDuringMigration:
      return "grant-during-migration";
    case FaultMode::kSmoSkipParentLink:
      return "smo-skip-parent-link";
  }
  return "?";
}

// Durability of the per-partition commit log (src/durability/). kOff is
// the paper's in-memory DTM and leaves the commit path byte-identical to
// the pre-durability protocol; kBuffered appends and flushes to the OS
// (library) buffer only; kFsync additionally fsyncs the backing file on
// every group-commit flush.
enum class DurabilityMode : uint8_t {
  kOff = 0,
  kBuffered = 1,
  kFsync = 2,
};

inline const char* DurabilityModeName(DurabilityMode m) {
  switch (m) {
    case DurabilityMode::kOff:
      return "off";
    case DurabilityMode::kBuffered:
      return "buffered";
    case DurabilityMode::kFsync:
      return "fsync";
  }
  return "?";
}

struct TmConfig {
  CmKind cm = CmKind::kFairCm;
  WriteAcquire write_acquire = WriteAcquire::kLazy;
  TxMode tx_mode = TxMode::kNormal;

  // Lock granularity in bytes (power of two). The paper maps single bytes;
  // a word stripe is the simulator's natural unit.
  uint64_t stripe_bytes = 8;

  // Maximum number of lock acquisitions travelling in one kBatchAcquire
  // message. The runtime groups pending read/write-set acquisitions by
  // responsible node and flushes each group in chunks of at most this many
  // addresses. 1 (the default) disables the batch protocol entirely: every
  // acquisition is its own kReadLockReq/kWriteLockReq round trip, the
  // pre-batching wire behaviour. Capped at kMaxBatchEntries (the grant
  // bitmap width).
  uint32_t max_batch = 1;

  // Maximum number of kBatchAcquire requests a runtime keeps in flight at
  // once. 1 (the default) is the lockstep protocol: every batch waits for
  // its reply before the next is issued — bit-identical to the pre-pipeline
  // wire behaviour. Larger depths let ReadMany / commit-time acquisition
  // overlap the per-node round trips (and enable Tx::Prefetch), hiding the
  // message latency that bounds throughput once batching has amortized the
  // per-message cost. Only batched acquisitions pipeline; the scalar
  // kReadLockReq/kWriteLockReq path stays synchronous.
  uint32_t pipeline_depth = 1;

  // Owner-local fast path: when the caller's own core is the responsible
  // node for a stripe (multitasked deployment with AddressMap owned ranges
  // — the share-little layout), call the local LockTable directly instead
  // of building a self-addressed message. Same CM arbitration, revocation
  // and stale-epoch semantics, zero messages and no coroutine-switch
  // charge. Off by default because it changes the modelled timing of
  // multitasked runs (the depth-1 identity guarantee); benches enable it
  // explicitly. TxStats::local_acquires vs remote_acquires records the
  // split.
  bool local_fast_path = false;

  // Elastic window: how many trailing reads stay protected/validated.
  uint32_t elastic_window = 2;

  // Back-off-Retry parameters: wait is uniform in [0, bound) core cycles,
  // bound doubling per consecutive abort up to the cap.
  uint64_t backoff_initial_cycles = 2000;
  uint64_t backoff_max_cycles = 1 << 20;

  // Service-side processing cost per request, in service-core cycles
  // (drives the service saturation behaviour of Figure 5(b)).
  uint64_t service_base_cycles = 120;
  uint64_t service_per_item_cycles = 40;

  // Base address of the per-core abort status words in shared memory
  // (one word per core, indexed by core id), or kNoAbortStatus when the
  // mechanism is disabled. The DS-Lock service publishes a revocation by
  // storing the victim's epoch here — the paper's "status atomically
  // switched from pending to aborted" — and the victim reads it atomically
  // with its write-set persist, closing the race between an in-flight
  // abort notification and the commit point. TmSystem sets this up
  // automatically; standalone harnesses may leave it disabled.
  uint64_t abort_status_base = kNoAbortStatus;
  static constexpr uint64_t kNoAbortStatus = UINT64_MAX;

  // Multitasked deployment only: cost of the libtask coroutine switch into
  // and out of the service task, charged per request an application core
  // serves. Dedicated cores never pay it — one reason the dedicated
  // deployment wins (Figure 4(a)).
  uint64_t multitask_switch_cycles = 250;

  // Planted protocol mutation (verification only; see FaultMode above).
  FaultMode fault = FaultMode::kNone;

  // Commit-log durability (dedicated deployment only; see src/durability/).
  // kOff keeps the commit path — and therefore every modelled timing —
  // byte-identical to the pre-durability protocol.
  DurabilityMode durability = DurabilityMode::kOff;

  // Group commit: the service defers kCommitLogAck and the log flush until
  // this many transactions' records are buffered (or its inbox drains).
  // 1 = flush per transaction, the no-grouping baseline.
  uint32_t group_commit_txs = 1;

  // Take a checkpoint of the partition image every N appended records so
  // recovery replays a bounded suffix; 0 = log only, never checkpoint.
  uint64_t checkpoint_every_records = 0;

  // Simulated costs of the durability path, charged on the service core:
  // per payload word appended, and per flush in each mode. Calibrated so
  // the ablation's expected ordering (off >= buffered >= fsync) is the
  // model's behaviour, not an accident: an fsync is ~a disk round trip.
  uint64_t log_append_cycles_per_word = 30;
  uint64_t log_flush_buffered_cycles = 400;
  uint64_t log_flush_fsync_cycles = 20000;

  // --- Stripe-ownership migration and admission control ------------------
  // Migration policy loop: every `migrate_check_every` acquire requests a
  // service tallies per-range traffic; if the window saw at least
  // `migrate_hot_threshold` requests to one owned range, that range is
  // migrated to the next partition round-robin. 0 disables the policy
  // (migrations then happen only on explicit kMigrateRange requests, which
  // tests and the chaos harness use for determinism).
  uint32_t migrate_check_every = 0;
  uint32_t migrate_hot_threshold = 0;

  // Cycles a client backs off after a kMigrating refusal before retrying —
  // long enough for a typical drain to finish, short enough not to idle a
  // core through the whole migration.
  uint64_t migrate_backoff_cycles = 4000;

  // Admission control: when a service observes more than this many pending
  // inbox messages, it refuses non-committing acquires with kOverload
  // instead of queueing them. 0 disables admission control. Commit-phase
  // acquisitions are always admitted: refusing a committer wastes every
  // lock it already holds.
  uint32_t overload_high_water = 0;

  // Cycles a client backs off after a kOverload refusal. Longer than the
  // migration backoff: an overloaded service needs its queue drained, not
  // an instant retry.
  uint64_t overload_backoff_cycles = 8000;
};

}  // namespace tm2c

#endif  // TM2C_SRC_TM_CONFIG_H_
